package bbcache

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/program"
)

func testImage(t *testing.T) *program.Image {
	t.Helper()
	b := program.NewBuilder()
	m1 := b.Module("exe", false)
	m2 := b.Module("dll", true)
	fb1, f1 := m1.Function("f1")
	fb1.Block()
	fb1.I(isa.Inst{Op: isa.OpNop})
	fb1.Halt()
	fb2, _ := m2.Function("f2")
	fb2.Block()
	fb2.I(isa.Inst{Op: isa.OpNop})
	fb2.I(isa.Inst{Op: isa.OpNop})
	fb2.Halt()
	b.SetEntry(f1)
	img, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestCopyIn(t *testing.T) {
	img := testImage(t)
	c := New()
	b1 := img.Modules[0].Functions[0].Blocks[0]
	b2 := img.Modules[1].Functions[0].Blocks[0]

	if c.Has(b1.Addr) {
		t.Error("empty cache claims a block")
	}
	e := c.CopyIn(b1)
	if e.Size != uint64(b1.Size())+BlockOverheadBytes {
		t.Errorf("size = %d, want %d", e.Size, b1.Size()+BlockOverheadBytes)
	}
	if !c.Has(b1.Addr) || c.Len() != 1 {
		t.Error("block missing after copy")
	}
	// Idempotence.
	e2 := c.CopyIn(b1)
	if e2 != e || c.Len() != 1 || c.Copies() != 1 {
		t.Error("double copy changed state")
	}
	c.CopyIn(b2)
	if c.Bytes() != e.Size+uint64(b2.Size())+BlockOverheadBytes {
		t.Errorf("bytes = %d", c.Bytes())
	}
	if c.Copies() != 2 {
		t.Errorf("copies = %d", c.Copies())
	}
}

func TestDeleteModule(t *testing.T) {
	img := testImage(t)
	c := New()
	c.CopyIn(img.Modules[0].Functions[0].Blocks[0])
	c.CopyIn(img.Modules[1].Functions[0].Blocks[0])
	if n := c.DeleteModule(1); n != 1 {
		t.Fatalf("deleted %d, want 1", n)
	}
	if c.Len() != 1 {
		t.Errorf("len = %d", c.Len())
	}
	if c.Has(img.Modules[1].Functions[0].Blocks[0].Addr) {
		t.Error("deleted block still present")
	}
	if n := c.DeleteModule(1); n != 0 {
		t.Errorf("second delete removed %d", n)
	}
	want := uint64(img.Modules[0].Functions[0].Blocks[0].Size()) + BlockOverheadBytes
	if c.Bytes() != want {
		t.Errorf("bytes = %d, want %d", c.Bytes(), want)
	}
}

func TestHeadTable(t *testing.T) {
	ht := NewHeadTable()
	h := ht.Mark(0x100, 2)
	if h.Addr != 0x100 || h.Module != 2 || h.Count != 0 {
		t.Fatalf("head = %+v", h)
	}
	if ht.Mark(0x100, 2) != h {
		t.Error("re-mark should return the same entry")
	}
	if ht.Len() != 1 {
		t.Errorf("len = %d", ht.Len())
	}
	got, ok := ht.Lookup(0x100)
	if !ok || got != h {
		t.Error("lookup failed")
	}
	if _, ok := ht.Lookup(0x200); ok {
		t.Error("lookup of unmarked address succeeded")
	}
	h.Count = 49
	h.TraceID = 7
	got, _ = ht.Lookup(0x100)
	if got.Count != 49 || got.TraceID != 7 {
		t.Error("mutations not visible through lookup")
	}
}

func TestHeadTableDeleteModule(t *testing.T) {
	ht := NewHeadTable()
	ht.Mark(0x100, 1)
	ht.Mark(0x200, 1)
	ht.Mark(0x300, 2)
	if n := ht.DeleteModule(1); n != 2 {
		t.Fatalf("deleted %d, want 2", n)
	}
	if ht.Len() != 1 {
		t.Errorf("len = %d", ht.Len())
	}
	if _, ok := ht.Lookup(0x300); !ok {
		t.Error("surviving head lost")
	}
}
