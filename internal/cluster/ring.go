// Package cluster shards the gencached shared persistent tier across nodes.
//
// The single-machine service keeps one in-process core.SharedPersistent; the
// cluster splits that publish table into a fixed number of shards and
// assigns each shard to one node with rendezvous (highest-random-weight)
// hashing over the member set. Publishes stay local and replicate
// asynchronously to the shard owner; lookups that miss the local tier pull
// from the owner on demand through a small per-node adoption cache (an
// arena governed by a policy from the zoo). The exchange protocol is a
// versioned binary wire format (wire.go) spoken over HTTP (http.go), and
// shard bootstrap reuses the persist snapshot format.
//
// Everything here is deterministic: the ring is a pure function of the
// sorted member IDs and the shard count, the wire format has no maps or
// randomized iteration, and the node measures latency through an injected
// simclock.Clock — so a simulated multi-node day is byte-reproducible.
package cluster

import (
	"fmt"
	"sort"
)

// Key is the cluster-wide identity of a publishable trace. It is the
// portable form of core.ShareKey: server-global module IDs are allocated
// per node in arrival order and therefore mean nothing across machines, so
// the exchange protocol keys on the (benchmark, log-local module, head
// address) triple every node can resolve through its own module namespace.
type Key struct {
	Bench  string
	Module uint16 // log-local module ID (not the node-global remap)
	Head   uint64
}

// FNV-1a 64-bit, inlined so the ring has no dependencies and hashes
// identically everywhere.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime }

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = fnvByte(h, s[i])
	}
	return h
}

func fnvU64(h uint64, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = fnvByte(h, byte(v>>(8*i)))
	}
	return h
}

// Shard maps the key onto [0, shards) by FNV-1a over its fields. The
// function is the one shard grammar of the system: nodes, drivers, and the
// snapshot filter all place a key the same way.
func (k Key) Shard(shards int) int {
	h := fnvString(fnvOffset, k.Bench)
	h = fnvByte(h, 0) // separate bench from the numeric fields
	h = fnvU64(h, uint64(k.Module))
	h = fnvU64(h, k.Head)
	return int(h % uint64(shards))
}

// Ring is the deterministic shard→node assignment: rendezvous hashing over
// the sorted member IDs. Rendezvous gives the minimal-movement property the
// rebalance tests pin down — when a node joins or leaves, the only shards
// that change owner are the ones moving to or from that node.
type Ring struct {
	shards int
	nodes  []string // sorted, deduplicated
	owner  []string // shard → node, precomputed
}

// MaxShards bounds the shard space; the wire decoders reject shard IDs at
// or above it.
const MaxShards = 1 << 16

// NewRing builds a ring over the member IDs. Membership order does not
// matter (the ring sorts); duplicates are collapsed.
func NewRing(shards int, nodes []string) (*Ring, error) {
	if shards <= 0 || shards > MaxShards {
		return nil, fmt.Errorf("cluster: shard count %d out of range (1..%d)", shards, MaxShards)
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	sorted := append([]string(nil), nodes...)
	sort.Strings(sorted)
	dedup := sorted[:0]
	for i, n := range sorted {
		if n == "" {
			return nil, fmt.Errorf("cluster: empty node ID")
		}
		if i > 0 && n == sorted[i-1] {
			continue
		}
		dedup = append(dedup, n)
	}
	r := &Ring{shards: shards, nodes: dedup, owner: make([]string, shards)}
	for s := range r.owner {
		r.owner[s] = r.rendezvous(s)
	}
	return r, nil
}

// rendezvous picks the member with the highest hash for the shard; ties
// break toward the lexically smaller ID so the assignment is total.
func (r *Ring) rendezvous(shard int) string {
	best, bestH := "", uint64(0)
	for _, n := range r.nodes {
		h := fnvU64(fnvString(fnvOffset, n), uint64(shard))
		if best == "" || h > bestH || (h == bestH && n < best) {
			best, bestH = n, h
		}
	}
	return best
}

// Shards returns the shard count.
func (r *Ring) Shards() int { return r.shards }

// Nodes returns the sorted member IDs (not a copy; callers must not mutate).
func (r *Ring) Nodes() []string { return r.nodes }

// Owner returns the node owning a shard.
func (r *Ring) Owner(shard int) string { return r.owner[shard] }

// OwnerOf returns the node owning a key's shard.
func (r *Ring) OwnerOf(k Key) string { return r.owner[k.Shard(r.shards)] }

// Owned returns the shards a node owns, ascending. Unknown nodes own
// nothing.
func (r *Ring) Owned(node string) []int {
	var out []int
	for s, n := range r.owner {
		if n == node {
			out = append(out, s)
		}
	}
	return out
}
