package cluster

import (
	"fmt"
	"sync"

	"repro/internal/codecache"
	"repro/internal/policy"
)

// Remote describes a trace adopted from a peer: where it lives and under
// which owner-local trace ID. IDs are node-local in this system, so the
// (node, traceID) pair is a pointer, not an identity — the identity is the
// cluster Key plus the size match.
type Remote struct {
	Node    string
	TraceID uint64
	Key     Key
	Size    uint64
}

// AdoptionStats counts the cache's traffic.
type AdoptionStats struct {
	Hits      uint64
	Misses    uint64
	Inserted  uint64
	Evicted   uint64
	Resident  int
	UsedBytes uint64
}

// AdoptionCache is the per-node pull-on-miss cache of remote publications:
// an arena governed by a policy from the zoo, exactly like a live tier, so
// the policy selector can race candidates on it. It memoizes successful
// peer lookups — the hot set of cross-node identities — and never holds
// trace bodies, only the (node, traceID, size) records adoption accounting
// needs.
type AdoptionCache struct {
	mu     sync.Mutex
	arena  *codecache.Arena
	pol    policy.Local
	nextID uint64
	byKey  map[Key]uint64 // cluster key → arena-local ID
	info   map[uint64]Remote
	stats  AdoptionStats
}

// NewAdoptionCache builds a cache of capacityBytes governed by the policy
// spec ("lru", "trrip:cold=4", ... — anything policy.Parse accepts).
func NewAdoptionCache(capacityBytes uint64, policySpec string) (*AdoptionCache, error) {
	if capacityBytes == 0 {
		return nil, fmt.Errorf("cluster: zero-capacity adoption cache")
	}
	f, err := policy.Parse(policySpec)
	if err != nil {
		return nil, fmt.Errorf("cluster: adoption cache policy: %w", err)
	}
	return &AdoptionCache{
		arena: codecache.New(capacityBytes),
		pol:   f.New(),
		byKey: make(map[Key]uint64),
		info:  make(map[uint64]Remote),
	}, nil
}

// Get returns the cached remote record for a key when present and
// size-matched; a size mismatch is treated as a miss (the peer's publication
// changed) and the stale record is dropped.
func (c *AdoptionCache) Get(k Key, size uint64) (Remote, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	id, ok := c.byKey[k]
	if !ok {
		c.stats.Misses++
		return Remote{}, false
	}
	r := c.info[id]
	if r.Size != size {
		c.dropLocked(id)
		c.stats.Misses++
		return Remote{}, false
	}
	c.arena.Access(id)
	c.pol.OnAccess(c.arena, id)
	c.stats.Hits++
	return r, true
}

// Put records a successful peer lookup. An existing record for the key is
// replaced. Insertion failures (the record is larger than the whole cache)
// are silently dropped — the cache is a memo, not a correctness surface.
func (c *AdoptionCache) Put(r Remote) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if id, ok := c.byKey[r.Key]; ok {
		c.dropLocked(id)
	}
	c.nextID++
	id := c.nextID
	f := codecache.Fragment{ID: id, Size: r.Size, Module: r.Key.Module, HeadAddr: r.Key.Head}
	err := c.pol.Insert(c.arena, f, func(victim codecache.Fragment) {
		c.evictLocked(victim.ID)
	})
	if err != nil {
		return
	}
	c.byKey[r.Key] = id
	c.info[id] = r
	c.stats.Inserted++
}

// Drop removes a key (a failed remote adoption invalidates the memo).
func (c *AdoptionCache) Drop(k Key) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if id, ok := c.byKey[k]; ok {
		c.dropLocked(id)
	}
}

// DropNode removes every record learned from one node (a departed peer's
// trace IDs are meaningless after it leaves) and returns how many went.
func (c *AdoptionCache) DropNode(node string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var ids []uint64
	for id, r := range c.info {
		if r.Node == node {
			ids = append(ids, id)
		}
	}
	for _, id := range ids {
		c.dropLocked(id)
	}
	return len(ids)
}

// dropLocked removes id from the arena and both maps.
func (c *AdoptionCache) dropLocked(id uint64) {
	c.arena.Delete(id, true)
	c.evictLocked(id)
}

// evictLocked cleans the maps after the arena let go of id (policy eviction
// or forced delete).
func (c *AdoptionCache) evictLocked(id uint64) {
	r, ok := c.info[id]
	if !ok {
		return
	}
	delete(c.info, id)
	if cur, ok := c.byKey[r.Key]; ok && cur == id {
		delete(c.byKey, r.Key)
	}
	c.stats.Evicted++
}

// Stats snapshots the cache counters.
func (c *AdoptionCache) Stats() AdoptionStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Resident = len(c.info)
	s.UsedBytes = c.arena.Used()
	return s
}

// PolicyName reports the governing policy's name.
func (c *AdoptionCache) PolicyName() string { return c.pol.Name() }
