package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// The trace-exchange wire format. Every message starts with the versioned
// magic and a type byte; integers are uvarints, strings length-prefixed.
// Decoders are bounded the same way the tracelog reader is: shard IDs,
// batch counts, name lengths, and payload sizes are all range-checked
// before any allocation sized by attacker-controlled input, and malformed
// bytes come back as errors, never panics (FuzzWire pins this).
const (
	// Magic versions the exchange framing. Bump it for any incompatible
	// change; peers on different versions fail closed (the session just
	// regenerates locally, which is always correct).
	Magic = "CCXCH1"

	// ExchangeContentType labels exchange bodies on the HTTP transport.
	ExchangeContentType = "application/x-gencache-exchange"

	// MaxNameLen bounds benchmark and node-ID strings on the wire.
	MaxNameLen = 255
	// MaxBatch bounds the records of one replication batch.
	MaxBatch = 4096
	// MaxModuleEntries bounds a snapshot's module table (the global module
	// space is 16-bit, so no honest table is larger).
	MaxModuleEntries = 1 << 16
	// MaxTraceBytes bounds a single trace's declared size.
	MaxTraceBytes = 1 << 40
)

// Message type bytes.
const (
	msgLookupReq byte = iota + 1
	msgLookupResp
	msgReplicateReq
	msgReplicateResp
	msgModuleTable
)

// ErrWire reports a malformed or out-of-bounds exchange message.
var ErrWire = errors.New("cluster: malformed exchange message")

// LookupRequest asks a shard owner whether it holds a publication.
type LookupRequest struct {
	Key   Key
	Size  uint64 // adopter's required size; owner answers found only on match
	Shard uint32 // requester's placement, validated against the owner's ring
}

// LookupResponse answers a LookupRequest.
type LookupResponse struct {
	Found   bool
	TraceID uint64 // owner-local trace ID (IDs are node-local, never shared identity)
	Size    uint64
}

// Replica is one publication being replicated to its shard owner.
type Replica struct {
	Key   Key
	Size  uint64
	Shard uint32
}

// ReplicateRequest pushes a batch of publications to their shard owner.
type ReplicateRequest struct {
	Origin  string // publishing node's ID
	Records []Replica
}

// ReplicateResponse reports how the owner disposed of a batch.
type ReplicateResponse struct {
	Accepted uint32
	Rejected uint32 // wrong shard, unmappable module, or no arena space
}

// ModuleEntry maps one sender-global module ID back to its portable
// (benchmark, log-local) identity. Snapshot transfers carry the table so a
// receiver can re-express the records in its own module namespace.
type ModuleEntry struct {
	Global uint16
	Local  uint16
	Bench  string
}

// ModuleTable prefixes a snapshot transfer body; the persist image follows.
type ModuleTable struct {
	Entries []ModuleEntry
}

// enc is a little append-only writer over the shared primitives.
func encHeader(msg byte) []byte {
	b := make([]byte, 0, 64)
	b = append(b, Magic...)
	return append(b, msg)
}

func encU64(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

func encStr(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// dec is a bounds-checked reader; the first error sticks.
type dec struct {
	buf []byte
	err error
}

func newDec(b []byte, msg byte) *dec {
	d := &dec{buf: b}
	if len(b) < len(Magic)+1 || string(b[:len(Magic)]) != Magic {
		d.err = fmt.Errorf("%w: bad magic", ErrWire)
		return d
	}
	if b[len(Magic)] != msg {
		d.err = fmt.Errorf("%w: message type %d, want %d", ErrWire, b[len(Magic)], msg)
		return d
	}
	d.buf = b[len(Magic)+1:]
	return d
}

func (d *dec) u64() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.err = fmt.Errorf("%w: truncated varint", ErrWire)
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *dec) u32bound(what string, max uint64) uint32 {
	v := d.u64()
	if d.err == nil && v > max {
		d.err = fmt.Errorf("%w: %s %d exceeds bound %d", ErrWire, what, v, max)
	}
	return uint32(v)
}

func (d *dec) u16(what string) uint16 {
	v := d.u64()
	if d.err == nil && v > 0xFFFF {
		d.err = fmt.Errorf("%w: %s %d exceeds 16 bits", ErrWire, what, v)
	}
	return uint16(v)
}

func (d *dec) size(what string) uint64 {
	v := d.u64()
	if d.err == nil && (v == 0 || v > MaxTraceBytes) {
		d.err = fmt.Errorf("%w: %s %d out of range", ErrWire, what, v)
	}
	return v
}

func (d *dec) str(what string, max int) string {
	n := d.u64()
	if d.err != nil {
		return ""
	}
	if n > uint64(max) {
		d.err = fmt.Errorf("%w: %s length %d exceeds bound %d", ErrWire, what, n, max)
		return ""
	}
	if uint64(len(d.buf)) < n {
		d.err = fmt.Errorf("%w: truncated %s", ErrWire, what)
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}

func (d *dec) bool(what string) bool {
	v := d.u64()
	if d.err == nil && v > 1 {
		d.err = fmt.Errorf("%w: %s %d is not a bool", ErrWire, what, v)
	}
	return v == 1
}

// done rejects trailing garbage: a whole-message decode must consume
// everything.
func (d *dec) done() error {
	if d.err != nil {
		return d.err
	}
	if len(d.buf) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrWire, len(d.buf))
	}
	return nil
}

func encKey(b []byte, k Key) []byte {
	b = encStr(b, k.Bench)
	b = encU64(b, uint64(k.Module))
	return encU64(b, k.Head)
}

func (d *dec) key() Key {
	var k Key
	k.Bench = d.str("benchmark", MaxNameLen)
	k.Module = d.u16("module")
	k.Head = d.u64()
	return k
}

// EncodeLookupRequest renders q in the exchange framing.
func EncodeLookupRequest(q LookupRequest) []byte {
	b := encHeader(msgLookupReq)
	b = encKey(b, q.Key)
	b = encU64(b, q.Size)
	return encU64(b, uint64(q.Shard))
}

// DecodeLookupRequest parses a lookup request, bounds-checked.
func DecodeLookupRequest(b []byte) (LookupRequest, error) {
	d := newDec(b, msgLookupReq)
	var q LookupRequest
	q.Key = d.key()
	q.Size = d.size("size")
	q.Shard = d.u32bound("shard", MaxShards-1)
	return q, d.done()
}

// EncodeLookupResponse renders p in the exchange framing.
func EncodeLookupResponse(p LookupResponse) []byte {
	b := encHeader(msgLookupResp)
	if p.Found {
		b = encU64(b, 1)
	} else {
		b = encU64(b, 0)
	}
	b = encU64(b, p.TraceID)
	return encU64(b, p.Size)
}

// DecodeLookupResponse parses a lookup response.
func DecodeLookupResponse(b []byte) (LookupResponse, error) {
	d := newDec(b, msgLookupResp)
	var p LookupResponse
	p.Found = d.bool("found")
	p.TraceID = d.u64()
	p.Size = d.u64()
	if d.err == nil && p.Found && (p.Size == 0 || p.Size > MaxTraceBytes) {
		d.err = fmt.Errorf("%w: found size %d out of range", ErrWire, p.Size)
	}
	return p, d.done()
}

// EncodeReplicateRequest renders q in the exchange framing.
func EncodeReplicateRequest(q ReplicateRequest) []byte {
	b := encHeader(msgReplicateReq)
	b = encStr(b, q.Origin)
	b = encU64(b, uint64(len(q.Records)))
	for _, r := range q.Records {
		b = encKey(b, r.Key)
		b = encU64(b, r.Size)
		b = encU64(b, uint64(r.Shard))
	}
	return b
}

// DecodeReplicateRequest parses a replication batch, bounds-checked on the
// record count, shard IDs, and sizes before any allocation.
func DecodeReplicateRequest(b []byte) (ReplicateRequest, error) {
	d := newDec(b, msgReplicateReq)
	var q ReplicateRequest
	q.Origin = d.str("origin", MaxNameLen)
	n := d.u64()
	if d.err == nil && n > MaxBatch {
		d.err = fmt.Errorf("%w: batch of %d exceeds %d", ErrWire, n, MaxBatch)
	}
	if d.err != nil {
		return q, d.err
	}
	q.Records = make([]Replica, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		var r Replica
		r.Key = d.key()
		r.Size = d.size("size")
		r.Shard = d.u32bound("shard", MaxShards-1)
		q.Records = append(q.Records, r)
	}
	return q, d.done()
}

// EncodeReplicateResponse renders p in the exchange framing.
func EncodeReplicateResponse(p ReplicateResponse) []byte {
	b := encHeader(msgReplicateResp)
	b = encU64(b, uint64(p.Accepted))
	return encU64(b, uint64(p.Rejected))
}

// DecodeReplicateResponse parses a replication response.
func DecodeReplicateResponse(b []byte) (ReplicateResponse, error) {
	d := newDec(b, msgReplicateResp)
	var p ReplicateResponse
	p.Accepted = d.u32bound("accepted", 1<<32-1)
	p.Rejected = d.u32bound("rejected", 1<<32-1)
	return p, d.done()
}

// EncodeModuleTable renders the snapshot-transfer module table. The persist
// image bytes follow it directly in a transfer body.
func EncodeModuleTable(t ModuleTable) []byte {
	b := encHeader(msgModuleTable)
	b = encU64(b, uint64(len(t.Entries)))
	for _, e := range t.Entries {
		b = encU64(b, uint64(e.Global))
		b = encU64(b, uint64(e.Local))
		b = encStr(b, e.Bench)
	}
	return b
}

// DecodeModuleTable parses a module table from the head of a snapshot
// transfer body and returns the remaining bytes (the persist image).
func DecodeModuleTable(b []byte) (ModuleTable, []byte, error) {
	d := newDec(b, msgModuleTable)
	var t ModuleTable
	n := d.u64()
	if d.err == nil && n > MaxModuleEntries {
		d.err = fmt.Errorf("%w: module table of %d exceeds %d", ErrWire, n, MaxModuleEntries)
	}
	if d.err != nil {
		return t, nil, d.err
	}
	t.Entries = make([]ModuleEntry, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		var e ModuleEntry
		e.Global = d.u16("global module")
		e.Local = d.u16("local module")
		e.Bench = d.str("benchmark", MaxNameLen)
		t.Entries = append(t.Entries, e)
	}
	if d.err != nil {
		return t, nil, d.err
	}
	return t, d.buf, nil
}
