package cluster

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzWire drives every exchange decoder over arbitrary bytes, mirroring
// the tracelog fuzzers: malformed input must come back as an error (never a
// panic, never an unbounded allocation), and anything that decodes must
// survive a re-encode→decode round trip unchanged.
func FuzzWire(f *testing.F) {
	f.Add(EncodeLookupRequest(LookupRequest{Key: Key{Bench: "gzip", Module: 3, Head: 0x40}, Size: 128, Shard: 7}))
	f.Add(EncodeLookupResponse(LookupResponse{Found: true, TraceID: 12, Size: 128}))
	f.Add(EncodeLookupResponse(LookupResponse{}))
	f.Add(EncodeReplicateRequest(ReplicateRequest{Origin: "node0", Records: []Replica{
		{Key: Key{Bench: "gzip", Module: 1, Head: 0x10}, Size: 64, Shard: 1},
	}}))
	f.Add(EncodeReplicateResponse(ReplicateResponse{Accepted: 1, Rejected: 2}))
	f.Add(append(EncodeModuleTable(ModuleTable{Entries: []ModuleEntry{{Global: 1, Local: 0, Bench: "gzip"}}}), 0xCC))
	f.Add([]byte(Magic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		if q, err := DecodeLookupRequest(data); err == nil {
			if got, err2 := DecodeLookupRequest(EncodeLookupRequest(q)); err2 != nil || got != q {
				t.Fatalf("lookup request round trip: %+v vs %+v (%v)", got, q, err2)
			}
		}
		if p, err := DecodeLookupResponse(data); err == nil {
			if got, err2 := DecodeLookupResponse(EncodeLookupResponse(p)); err2 != nil || got != p {
				t.Fatalf("lookup response round trip: %+v vs %+v (%v)", got, p, err2)
			}
		}
		if q, err := DecodeReplicateRequest(data); err == nil {
			if got, err2 := DecodeReplicateRequest(EncodeReplicateRequest(q)); err2 != nil || !reflect.DeepEqual(got, q) {
				t.Fatalf("replicate request round trip: %+v vs %+v (%v)", got, q, err2)
			}
		}
		if p, err := DecodeReplicateResponse(data); err == nil {
			if got, err2 := DecodeReplicateResponse(EncodeReplicateResponse(p)); err2 != nil || got != p {
				t.Fatalf("replicate response round trip: %+v vs %+v (%v)", got, p, err2)
			}
		}
		if tbl, rest, err := DecodeModuleTable(data); err == nil {
			got, rest2, err2 := DecodeModuleTable(append(EncodeModuleTable(tbl), rest...))
			if err2 != nil || !reflect.DeepEqual(got, tbl) || !bytes.Equal(rest2, rest) {
				t.Fatalf("module table round trip: %+v vs %+v (%v)", got, tbl, err2)
			}
		}
	})
}
