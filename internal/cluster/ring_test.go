package cluster

import (
	"fmt"
	"reflect"
	"testing"
)

func mustRing(t *testing.T, shards int, nodes []string) *Ring {
	t.Helper()
	r, err := NewRing(shards, nodes)
	if err != nil {
		t.Fatalf("NewRing(%d, %v): %v", shards, nodes, err)
	}
	return r
}

// TestRingDeterministic: the assignment is a pure function of (shards,
// members) regardless of member order.
func TestRingDeterministic(t *testing.T) {
	a := mustRing(t, 128, []string{"node0", "node1", "node2"})
	b := mustRing(t, 128, []string{"node2", "node0", "node1", "node1"})
	for s := 0; s < 128; s++ {
		if a.Owner(s) != b.Owner(s) {
			t.Fatalf("shard %d: %q vs %q", s, a.Owner(s), b.Owner(s))
		}
	}
	if !reflect.DeepEqual(a.Nodes(), []string{"node0", "node1", "node2"}) {
		t.Fatalf("nodes = %v", a.Nodes())
	}
}

// TestRingCoversAndPartitions: every shard has exactly one owner and the
// Owned lists partition the shard space.
func TestRingCoversAndPartitions(t *testing.T) {
	r := mustRing(t, 257, []string{"a", "b", "c", "d", "e"})
	seen := make(map[int]string)
	for _, n := range r.Nodes() {
		for _, s := range r.Owned(n) {
			if prev, dup := seen[s]; dup {
				t.Fatalf("shard %d owned by %q and %q", s, prev, n)
			}
			seen[s] = n
		}
	}
	if len(seen) != 257 {
		t.Fatalf("owned lists cover %d of 257 shards", len(seen))
	}
}

// TestRingBalance: with shards >> nodes, no node owns a wildly
// disproportionate share.
func TestRingBalance(t *testing.T) {
	const shards, nodes = 1024, 8
	var ids []string
	for i := 0; i < nodes; i++ {
		ids = append(ids, fmt.Sprintf("node%d", i))
	}
	r := mustRing(t, shards, ids)
	for _, n := range ids {
		owned := len(r.Owned(n))
		mean := shards / nodes
		if owned < mean/3 || owned > mean*3 {
			t.Errorf("node %s owns %d shards, mean %d", n, owned, mean)
		}
	}
}

// TestRingJoinMovesOnlyToJoiner: rendezvous hashing's minimal-movement
// property — when a node joins, every shard that changes owner moves TO the
// joiner, and the moved fraction is about 1/(n+1).
func TestRingJoinMovesOnlyToJoiner(t *testing.T) {
	const shards = 1024
	old := mustRing(t, shards, []string{"node0", "node1", "node2"})
	now := mustRing(t, shards, []string{"node0", "node1", "node2", "node3"})
	moved := 0
	for s := 0; s < shards; s++ {
		if old.Owner(s) == now.Owner(s) {
			continue
		}
		if now.Owner(s) != "node3" {
			t.Fatalf("shard %d moved %q→%q, not to the joiner", s, old.Owner(s), now.Owner(s))
		}
		moved++
	}
	if moved != len(now.Owned("node3")) {
		t.Fatalf("moved %d but joiner owns %d", moved, len(now.Owned("node3")))
	}
	// Expect ~shards/4 = 256; allow wide but meaningful bounds.
	if moved < shards/8 || moved > shards/2 {
		t.Errorf("join moved %d of %d shards, expected about %d", moved, shards, shards/4)
	}
}

// TestRingLeaveMovesOnlyFromLeaver: the departed node's shards are
// redistributed; everything else stays put.
func TestRingLeaveMovesOnlyFromLeaver(t *testing.T) {
	const shards = 1024
	old := mustRing(t, shards, []string{"node0", "node1", "node2", "node3"})
	now := mustRing(t, shards, []string{"node0", "node1", "node2"})
	moved := 0
	for s := 0; s < shards; s++ {
		if old.Owner(s) == now.Owner(s) {
			continue
		}
		if old.Owner(s) != "node3" {
			t.Fatalf("shard %d moved %q→%q though node3 left", s, old.Owner(s), now.Owner(s))
		}
		moved++
	}
	if moved != len(old.Owned("node3")) {
		t.Fatalf("moved %d but the leaver owned %d", moved, len(old.Owned("node3")))
	}
}

// TestKeyShardStable: the key hash is stable across calls and respects the
// bench separator (same numeric fields under different benches land
// independently).
func TestKeyShardStable(t *testing.T) {
	k := Key{Bench: "gzip", Module: 3, Head: 0x1000}
	if k.Shard(64) != k.Shard(64) {
		t.Fatal("Shard is not a pure function")
	}
	if k.Shard(64) < 0 || k.Shard(64) >= 64 {
		t.Fatalf("shard %d out of range", k.Shard(64))
	}
	// Not a correctness requirement, but the seam the separator exists for:
	// bench must participate in the hash.
	diff := 0
	for head := uint64(0); head < 64; head++ {
		a := Key{Bench: "gzip", Module: 3, Head: head}.Shard(1024)
		b := Key{Bench: "mcf", Module: 3, Head: head}.Shard(1024)
		if a != b {
			diff++
		}
	}
	if diff == 0 {
		t.Error("bench never influenced the shard")
	}
}

// TestRingRejects: invalid configurations fail closed.
func TestRingRejects(t *testing.T) {
	if _, err := NewRing(0, []string{"a"}); err == nil {
		t.Error("zero shards accepted")
	}
	if _, err := NewRing(MaxShards+1, []string{"a"}); err == nil {
		t.Error("oversized shard space accepted")
	}
	if _, err := NewRing(8, nil); err == nil {
		t.Error("empty membership accepted")
	}
	if _, err := NewRing(8, []string{""}); err == nil {
		t.Error("empty node ID accepted")
	}
}
