package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/persist"
)

// Peer endpoint paths on a gencached node. The server side lives in
// internal/server (peer.go); this file is the client side.
const (
	PeerLookupPath    = "/v1/peer/lookup"
	PeerReplicatePath = "/v1/peer/replicate"
	PeerSnapshotPath  = "/v1/peer/snapshot"
)

// maxPeerBody bounds how much of a peer response the transport will read:
// replies are small fixed messages except snapshots, which are bounded by
// the peer's shared-tier capacity, not by the requester.
const maxPeerBody = 64 << 20

// HTTPTransport speaks the trace-exchange protocol to one peer over HTTP.
type HTTPTransport struct {
	BaseURL string
	Client  *http.Client
}

func (t *HTTPTransport) client() *http.Client {
	if t.Client != nil {
		return t.Client
	}
	return http.DefaultClient
}

func (t *HTTPTransport) post(ctx context.Context, path string, body []byte) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, t.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", ExchangeContentType)
	resp, err := t.client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: peer %s%s: HTTP %d", t.BaseURL, path, resp.StatusCode)
	}
	return io.ReadAll(io.LimitReader(resp.Body, maxPeerBody))
}

// Lookup implements Transport.
func (t *HTTPTransport) Lookup(ctx context.Context, q LookupRequest) (LookupResponse, error) {
	body, err := t.post(ctx, PeerLookupPath, EncodeLookupRequest(q))
	if err != nil {
		return LookupResponse{}, err
	}
	return DecodeLookupResponse(body)
}

// Replicate implements Transport.
func (t *HTTPTransport) Replicate(ctx context.Context, q ReplicateRequest) (ReplicateResponse, error) {
	body, err := t.post(ctx, PeerReplicatePath, EncodeReplicateRequest(q))
	if err != nil {
		return ReplicateResponse{}, err
	}
	return DecodeReplicateResponse(body)
}

// FormatShards renders a shard list for the snapshot query string.
func FormatShards(shards []int) string {
	var b strings.Builder
	for i, s := range shards {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(s))
	}
	return b.String()
}

// ParseShards parses a snapshot query's shard list, bounds-checked against
// the ring size.
func ParseShards(s string, ringShards int) ([]int, error) {
	if s == "" {
		return nil, fmt.Errorf("cluster: empty shard list")
	}
	parts := strings.Split(s, ",")
	if len(parts) > ringShards {
		return nil, fmt.Errorf("cluster: shard list longer than the ring (%d > %d)", len(parts), ringShards)
	}
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 || v >= ringShards {
			return nil, fmt.Errorf("cluster: bad shard %q (ring has %d)", p, ringShards)
		}
		out = append(out, v)
	}
	return out, nil
}

// Snapshot implements Transport: GET the peer's publications for the given
// shards as a module table + persist image.
func (t *HTTPTransport) Snapshot(ctx context.Context, shards []int) (ModuleTable, persist.Image, error) {
	url := t.BaseURL + PeerSnapshotPath + "?shards=" + FormatShards(shards)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return ModuleTable{}, persist.Image{}, err
	}
	resp, err := t.client().Do(req)
	if err != nil {
		return ModuleTable{}, persist.Image{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return ModuleTable{}, persist.Image{}, fmt.Errorf("cluster: peer snapshot: HTTP %d", resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerBody))
	if err != nil {
		return ModuleTable{}, persist.Image{}, err
	}
	table, rest, err := DecodeModuleTable(body)
	if err != nil {
		return ModuleTable{}, persist.Image{}, err
	}
	img, err := persist.Load(bytes.NewReader(rest))
	if err != nil {
		return ModuleTable{}, persist.Image{}, err
	}
	return table, img, nil
}
