package cluster

import (
	"reflect"
	"strings"
	"testing"
)

// TestWireRoundTrip: every message survives encode→decode.
func TestWireRoundTrip(t *testing.T) {
	lq := LookupRequest{Key: Key{Bench: "gzip", Module: 7, Head: 0xDEADBEEF}, Size: 4096, Shard: 42}
	if got, err := DecodeLookupRequest(EncodeLookupRequest(lq)); err != nil || got != lq {
		t.Fatalf("lookup request: %+v, %v", got, err)
	}
	for _, lr := range []LookupResponse{
		{Found: true, TraceID: 99, Size: 4096},
		{Found: false},
	} {
		if got, err := DecodeLookupResponse(EncodeLookupResponse(lr)); err != nil || got != lr {
			t.Fatalf("lookup response: %+v, %v", got, err)
		}
	}
	rq := ReplicateRequest{
		Origin: "node1",
		Records: []Replica{
			{Key: Key{Bench: "gzip", Module: 1, Head: 0x10}, Size: 64, Shard: 3},
			{Key: Key{Bench: "vortex", Module: 2, Head: 0x20}, Size: 128, Shard: 9},
		},
	}
	if got, err := DecodeReplicateRequest(EncodeReplicateRequest(rq)); err != nil || !reflect.DeepEqual(got, rq) {
		t.Fatalf("replicate request: %+v, %v", got, err)
	}
	rp := ReplicateResponse{Accepted: 2, Rejected: 1}
	if got, err := DecodeReplicateResponse(EncodeReplicateResponse(rp)); err != nil || got != rp {
		t.Fatalf("replicate response: %+v, %v", got, err)
	}
	mt := ModuleTable{Entries: []ModuleEntry{
		{Global: 1, Local: 0, Bench: "gzip"},
		{Global: 2, Local: 1, Bench: "gzip"},
	}}
	tail := []byte("PERSIST-BYTES")
	body := append(EncodeModuleTable(mt), tail...)
	got, rest, err := DecodeModuleTable(body)
	if err != nil || !reflect.DeepEqual(got, mt) || string(rest) != string(tail) {
		t.Fatalf("module table: %+v rest %q err %v", got, rest, err)
	}
}

// TestWireBounds: out-of-bounds fields are rejected with ErrWire, not
// accepted or panicked on.
func TestWireBounds(t *testing.T) {
	// Shard beyond the ring space.
	bad := EncodeLookupRequest(LookupRequest{Key: Key{Bench: "gzip"}, Size: 1, Shard: MaxShards})
	if _, err := DecodeLookupRequest(bad); err == nil {
		t.Error("oversized shard accepted")
	}
	// Zero size.
	if _, err := DecodeLookupRequest(EncodeLookupRequest(LookupRequest{Key: Key{Bench: "g"}, Size: 0, Shard: 1})); err == nil {
		t.Error("zero size accepted")
	}
	// Benchmark name beyond the bound.
	long := LookupRequest{Key: Key{Bench: strings.Repeat("x", MaxNameLen+1)}, Size: 1, Shard: 0}
	if _, err := DecodeLookupRequest(EncodeLookupRequest(long)); err == nil {
		t.Error("oversized bench name accepted")
	}
	// Batch count lies about the payload: huge declared count, no records.
	huge := encHeader(msgReplicateReq)
	huge = encStr(huge, "n")
	huge = encU64(huge, MaxBatch+1)
	if _, err := DecodeReplicateRequest(huge); err == nil {
		t.Error("oversized batch accepted")
	}
	// Wrong magic and wrong message type.
	if _, err := DecodeLookupRequest([]byte("XXXXXX\x01")); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := DecodeLookupRequest(EncodeLookupResponse(LookupResponse{})); err == nil {
		t.Error("wrong message type accepted")
	}
	// Trailing garbage on a whole-message decode.
	ok := EncodeLookupResponse(LookupResponse{Found: true, TraceID: 1, Size: 2})
	if _, err := DecodeLookupResponse(append(ok, 0xFF)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

// TestParseShards: the snapshot query's shard list is bounds-checked.
func TestParseShards(t *testing.T) {
	got, err := ParseShards("0,5,63", 64)
	if err != nil || !reflect.DeepEqual(got, []int{0, 5, 63}) {
		t.Fatalf("ParseShards = %v, %v", got, err)
	}
	for _, bad := range []string{"", "64", "-1", "x", "1,,2"} {
		if _, err := ParseShards(bad, 64); err == nil {
			t.Errorf("ParseShards(%q) accepted", bad)
		}
	}
	if s := FormatShards([]int{0, 5, 63}); s != "0,5,63" {
		t.Errorf("FormatShards = %q", s)
	}
}
