package cluster

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/persist"
)

// fakePeer is an in-process Transport over a map of publications.
type fakePeer struct {
	pubs      map[Key]LookupResponse
	accepted  []Replica
	lookupErr error
	lookups   int
}

func (p *fakePeer) Lookup(_ context.Context, q LookupRequest) (LookupResponse, error) {
	p.lookups++
	if p.lookupErr != nil {
		return LookupResponse{}, p.lookupErr
	}
	r, ok := p.pubs[q.Key]
	if !ok {
		return LookupResponse{}, nil
	}
	if r.Size != q.Size {
		return LookupResponse{}, nil
	}
	return r, nil
}

func (p *fakePeer) Replicate(_ context.Context, q ReplicateRequest) (ReplicateResponse, error) {
	if p.lookupErr != nil {
		return ReplicateResponse{}, p.lookupErr
	}
	p.accepted = append(p.accepted, q.Records...)
	return ReplicateResponse{Accepted: uint32(len(q.Records))}, nil
}

func (p *fakePeer) Snapshot(context.Context, []int) (ModuleTable, persist.Image, error) {
	return ModuleTable{}, persist.Image{}, errors.New("not implemented")
}

// keyOwnedBy hunts for a key whose shard the ring assigns to the wanted
// node — the deterministic way tests steer placement.
func keyOwnedBy(t *testing.T, r *Ring, node, bench string) Key {
	t.Helper()
	for head := uint64(0); head < 4096; head++ {
		k := Key{Bench: bench, Module: 1, Head: head}
		if r.OwnerOf(k) == node {
			return k
		}
	}
	t.Fatalf("no key owned by %s in 4096 tries", node)
	return Key{}
}

func newTestNode(t *testing.T, peers []Peer) *Node {
	t.Helper()
	n, err := New(Config{NodeID: "self", Shards: 64, AdoptionCacheBytes: 1 << 16}, peers)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestRemoteAdoptPullOnMiss: a remote hit is served by the owner once, then
// by the adoption cache.
func TestRemoteAdoptPullOnMiss(t *testing.T) {
	peer := &fakePeer{pubs: make(map[Key]LookupResponse)}
	n := newTestNode(t, []Peer{{ID: "peer0", Transport: peer}})
	k := keyOwnedBy(t, n.Ring(), "peer0", "gzip")
	peer.pubs[k] = LookupResponse{Found: true, TraceID: 77, Size: 256}

	r, ok := n.RemoteAdopt(context.Background(), k, 256)
	if !ok || r.Node != "peer0" || r.TraceID != 77 {
		t.Fatalf("RemoteAdopt = %+v, %v", r, ok)
	}
	if _, ok := n.RemoteAdopt(context.Background(), k, 256); !ok {
		t.Fatal("second adopt missed")
	}
	if peer.lookups != 1 {
		t.Fatalf("peer saw %d lookups, want 1 (cache should serve the second)", peer.lookups)
	}
	s := n.Stats()
	if s.PeerAdoptions != 2 || s.PeerLookups != 1 || s.Adoption.Hits != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestRemoteAdoptMissAndError: not-found, size-mismatch, and transport
// failure all come back as clean misses.
func TestRemoteAdoptMissAndError(t *testing.T) {
	peer := &fakePeer{pubs: make(map[Key]LookupResponse)}
	n := newTestNode(t, []Peer{{ID: "peer0", Transport: peer}})
	k := keyOwnedBy(t, n.Ring(), "peer0", "gzip")

	if _, ok := n.RemoteAdopt(context.Background(), k, 128); ok {
		t.Fatal("adopted an unpublished key")
	}
	peer.pubs[k] = LookupResponse{Found: true, TraceID: 5, Size: 999}
	if _, ok := n.RemoteAdopt(context.Background(), k, 128); ok {
		t.Fatal("adopted across a size mismatch")
	}
	peer.lookupErr = errors.New("down")
	if _, ok := n.RemoteAdopt(context.Background(), k, 128); ok {
		t.Fatal("adopted from a dead peer")
	}
	s := n.Stats()
	if s.PeerLookupMisses != 2 || s.PeerLookupErrors != 1 {
		t.Fatalf("stats = %+v", s)
	}
	// Keys this node owns never go remote.
	own := keyOwnedBy(t, n.Ring(), "self", "gzip")
	before := peer.lookups
	if _, ok := n.RemoteAdopt(context.Background(), own, 64); ok {
		t.Fatal("went remote for an owned key")
	}
	if peer.lookups != before {
		t.Fatal("owned-key adopt hit the transport")
	}
}

// TestReplicationQueueAndFlush: publishes queue for their owners and drain
// deterministically; owned keys never queue.
func TestReplicationQueueAndFlush(t *testing.T) {
	p0 := &fakePeer{pubs: make(map[Key]LookupResponse)}
	p1 := &fakePeer{pubs: make(map[Key]LookupResponse)}
	n := newTestNode(t, []Peer{{ID: "peer0", Transport: p0}, {ID: "peer1", Transport: p1}})

	k0 := keyOwnedBy(t, n.Ring(), "peer0", "gzip")
	k1 := keyOwnedBy(t, n.Ring(), "peer1", "gzip")
	own := keyOwnedBy(t, n.Ring(), "self", "gzip")

	if !n.NotePublish(k0, 100) || !n.NotePublish(k1, 200) {
		t.Fatal("peer-owned publish did not queue")
	}
	if n.NotePublish(own, 300) {
		t.Fatal("self-owned publish queued")
	}
	if got := n.PendingReplication(); got != 2 {
		t.Fatalf("pending = %d", got)
	}
	if sent := n.FlushReplication(context.Background()); sent != 2 {
		t.Fatalf("flushed %d", sent)
	}
	if len(p0.accepted) != 1 || p0.accepted[0].Key != k0 {
		t.Fatalf("peer0 got %+v", p0.accepted)
	}
	if len(p1.accepted) != 1 || p1.accepted[0].Key != k1 {
		t.Fatalf("peer1 got %+v", p1.accepted)
	}
	if n.PendingReplication() != 0 {
		t.Fatal("queue not drained")
	}
	if n.FlushReplication(context.Background()) != 0 {
		t.Fatal("empty flush sent records")
	}
}

// TestFlushDropsOnDeadPeer: a transport failure drops the batch and counts
// it; the queue still drains.
func TestFlushDropsOnDeadPeer(t *testing.T) {
	p0 := &fakePeer{lookupErr: errors.New("down")}
	n := newTestNode(t, []Peer{{ID: "peer0", Transport: p0}})
	k := keyOwnedBy(t, n.Ring(), "peer0", "gzip")
	n.NotePublish(k, 64)
	if sent := n.FlushReplication(context.Background()); sent != 0 {
		t.Fatalf("sent %d to a dead peer", sent)
	}
	if s := n.Stats(); s.ReplicateDropped != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if n.PendingReplication() != 0 {
		t.Fatal("dropped records stayed queued")
	}
}

// TestSetPeersRebalances: a departure rebuilds the ring and drops the
// departed node's cached records.
func TestSetPeersRebalances(t *testing.T) {
	p0 := &fakePeer{pubs: make(map[Key]LookupResponse)}
	p1 := &fakePeer{pubs: make(map[Key]LookupResponse)}
	n := newTestNode(t, []Peer{{ID: "peer0", Transport: p0}, {ID: "peer1", Transport: p1}})

	k := keyOwnedBy(t, n.Ring(), "peer0", "gzip")
	p0.pubs[k] = LookupResponse{Found: true, TraceID: 8, Size: 64}
	if _, ok := n.RemoteAdopt(context.Background(), k, 64); !ok {
		t.Fatal("seed adopt failed")
	}
	if err := n.SetPeers([]Peer{{ID: "peer1", Transport: p1}}); err != nil {
		t.Fatal(err)
	}
	if got := n.Ring().Nodes(); len(got) != 2 {
		t.Fatalf("ring nodes = %v", got)
	}
	if s := n.Cache().Stats(); s.Resident != 0 {
		t.Fatalf("departed peer's records survived: %+v", s)
	}
	for s := 0; s < n.Ring().Shards(); s++ {
		if owner := n.Ring().Owner(s); owner == "peer0" {
			t.Fatalf("shard %d still owned by the departed peer", s)
		}
	}
}

// TestNodeConfigValidation: busted configurations fail closed.
func TestNodeConfigValidation(t *testing.T) {
	if _, err := New(Config{}, nil); err == nil {
		t.Error("empty node ID accepted")
	}
	if _, err := New(Config{NodeID: "self"}, []Peer{{ID: "self", Transport: &fakePeer{}}}); err == nil {
		t.Error("self in peer list accepted")
	}
	if _, err := New(Config{NodeID: "self"}, []Peer{{ID: "p", Transport: nil}}); err == nil {
		t.Error("nil transport accepted")
	}
	if _, err := New(Config{NodeID: "self"}, []Peer{
		{ID: "p", Transport: &fakePeer{}}, {ID: "p", Transport: &fakePeer{}},
	}); err == nil {
		t.Error("duplicate peer accepted")
	}
	if _, err := New(Config{NodeID: "self", AdoptionPolicy: "no-such-policy"}, nil); err == nil {
		t.Error("unknown adoption policy accepted")
	}
}

// TestAdoptionCacheEviction: the cache is a real arena under a real policy —
// filling it past capacity evicts and the maps stay consistent.
func TestAdoptionCacheEviction(t *testing.T) {
	c, err := NewAdoptionCache(256, "lru")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		k := Key{Bench: "gzip", Module: 1, Head: uint64(i)}
		c.Put(Remote{Node: "peer0", TraceID: uint64(i), Key: k, Size: 64})
	}
	s := c.Stats()
	if s.Evicted == 0 {
		t.Fatal("no evictions at 16x capacity pressure")
	}
	if s.UsedBytes > 256 {
		t.Fatalf("used %d bytes of 256", s.UsedBytes)
	}
	if s.Resident > 4 {
		t.Fatalf("resident %d records of 64 bytes in a 256-byte cache", s.Resident)
	}
	// The newest key must be resident; a hit refreshes it.
	last := Key{Bench: "gzip", Module: 1, Head: 15}
	if _, ok := c.Get(last, 64); !ok {
		t.Fatal("most recent record evicted")
	}
	// Size mismatch invalidates.
	if _, ok := c.Get(last, 65); ok {
		t.Fatal("size mismatch served")
	}
	if _, ok := c.Get(last, 64); ok {
		t.Fatal("stale record survived the mismatch")
	}
}

func ExampleRing() {
	r, _ := NewRing(8, []string{"node0", "node1"})
	k := Key{Bench: "gzip", Module: 1, Head: 0x400}
	fmt.Println(r.OwnerOf(k) == r.Owner(k.Shard(8)))
	// Output: true
}
