package cluster

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/persist"
	"repro/internal/simclock"
)

// Transport is one peer's side of the trace-exchange protocol. The HTTP
// transport (http.go) is the production implementation; tests may inject
// in-process fakes.
type Transport interface {
	// Lookup asks whether the peer's shard holds a size-matched publication.
	Lookup(ctx context.Context, q LookupRequest) (LookupResponse, error)
	// Replicate pushes a batch of publications to the peer.
	Replicate(ctx context.Context, q ReplicateRequest) (ReplicateResponse, error)
	// Snapshot streams the peer's publications for the given shards in the
	// persist format, prefixed by the module table that makes the records
	// portable.
	Snapshot(ctx context.Context, shards []int) (ModuleTable, persist.Image, error)
}

// Peer names a cluster member and how to reach it.
type Peer struct {
	ID        string
	Transport Transport
}

// Config configures a Node.
type Config struct {
	// NodeID is this node's member ID; it must be unique in the cluster.
	NodeID string
	// Shards is the shard count; every member must agree on it. Default 64.
	Shards int
	// AdoptionCacheBytes sizes the pull-on-miss cache. Default 1 MiB.
	AdoptionCacheBytes uint64
	// AdoptionPolicy governs the cache ("lru", "trrip", ...). Default "lru".
	AdoptionPolicy string
	// Clock is the time plane peer-lookup latency is measured on; it must be
	// the serving layer's clock so virtual days stay deterministic. Default
	// the real clock.
	Clock simclock.Clock
}

// Stats counts the node's exchange traffic. LookupSeconds accumulates
// peer-lookup latency on the node's clock plane; with the count it yields
// the mean the metrics endpoint exports.
type Stats struct {
	PeerAdoptions     uint64 // cross-node adoptions served (cache or lookup)
	PeerLookups       uint64 // lookups actually sent to a peer
	PeerLookupMisses  uint64 // peer answered not-found or size-mismatched
	PeerLookupErrors  uint64 // transport failures (departed or broken peers)
	Replicated        uint64 // records accepted by shard owners
	ReplicateRejected uint64 // records a shard owner refused
	ReplicateDropped  uint64 // records dropped on transport failure
	LookupSeconds     float64
	Adoption          AdoptionStats
}

// Node is one member's view of the distributed shared tier: the ring, the
// peer transports, the adoption cache, and the pending-replication queue.
// The serving layer drives it — NotePublish on every shared-tier
// publication, RemoteAdopt on every local adoption miss, FlushReplication
// from whatever cadence the deployment wants (a ticker in the live daemon,
// a fixed point in deterministic drivers — replication is asynchronous
// either way, the session never waits on it).
type Node struct {
	cfg Config

	mu      sync.Mutex
	ring    *Ring
	peers   map[string]Transport
	pending []Replica
	stats   Stats

	cache *AdoptionCache
}

// New builds a node over its peers. The ring covers the node itself plus
// every peer.
func New(cfg Config, peers []Peer) (*Node, error) {
	if cfg.NodeID == "" {
		return nil, fmt.Errorf("cluster: node needs an ID")
	}
	if len(cfg.NodeID) > MaxNameLen {
		return nil, fmt.Errorf("cluster: node ID longer than %d bytes", MaxNameLen)
	}
	if cfg.Shards == 0 {
		cfg.Shards = 64
	}
	if cfg.AdoptionCacheBytes == 0 {
		cfg.AdoptionCacheBytes = 1 << 20
	}
	if cfg.AdoptionPolicy == "" {
		cfg.AdoptionPolicy = "lru"
	}
	if cfg.Clock == nil {
		cfg.Clock = simclock.Real{}
	}
	cache, err := NewAdoptionCache(cfg.AdoptionCacheBytes, cfg.AdoptionPolicy)
	if err != nil {
		return nil, err
	}
	n := &Node{cfg: cfg, cache: cache}
	if err := n.SetPeers(peers); err != nil {
		return nil, err
	}
	return n, nil
}

// ID returns the node's member ID.
func (n *Node) ID() string { return n.cfg.NodeID }

// Ring returns the current membership's ring.
func (n *Node) Ring() *Ring {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.ring
}

// SetPeers replaces the peer set (join/leave) and rebuilds the ring over
// self + peers. Records cached from departed peers are dropped — their
// trace IDs are dangling.
func (n *Node) SetPeers(peers []Peer) error {
	ids := []string{n.cfg.NodeID}
	transports := make(map[string]Transport, len(peers))
	for _, p := range peers {
		if p.ID == n.cfg.NodeID {
			return fmt.Errorf("cluster: peer list contains this node (%s)", p.ID)
		}
		if p.Transport == nil {
			return fmt.Errorf("cluster: peer %s has no transport", p.ID)
		}
		if _, dup := transports[p.ID]; dup {
			return fmt.Errorf("cluster: duplicate peer %s", p.ID)
		}
		ids = append(ids, p.ID)
		transports[p.ID] = p.Transport
	}
	ring, err := NewRing(n.cfg.Shards, ids)
	if err != nil {
		return err
	}
	n.mu.Lock()
	old := n.peers
	n.ring = ring
	n.peers = transports
	n.mu.Unlock()
	for id := range old {
		if _, still := transports[id]; !still {
			n.cache.DropNode(id)
		}
	}
	return nil
}

// Peers returns the current peer IDs, sorted.
func (n *Node) Peers() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]string, 0, len(n.peers))
	for id := range n.peers {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Transport returns the transport to one current peer, or nil when the ID
// is not a member — snapshot bootstrap walks the membership through this.
func (n *Node) Transport(id string) Transport {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.peers[id]
}

// OwnedShards returns the shards this node owns under the current ring.
func (n *Node) OwnedShards() []int { return n.Ring().Owned(n.cfg.NodeID) }

// Owns reports whether this node owns the key's shard.
func (n *Node) Owns(k Key) bool { return n.Ring().OwnerOf(k) == n.cfg.NodeID }

// NotePublish queues a local publication for replication to its shard
// owner. Publications this node owns need no replication (the local shared
// tier is the shard) and return false.
func (n *Node) NotePublish(k Key, size uint64) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.ring.OwnerOf(k) == n.cfg.NodeID {
		return false
	}
	n.pending = append(n.pending, Replica{Key: k, Size: size, Shard: uint32(k.Shard(n.ring.Shards()))})
	return true
}

// PendingReplication returns the queued record count.
func (n *Node) PendingReplication() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.pending)
}

// FlushReplication drains the queue, batching records by owner (owners in
// sorted order, records in queue order — deterministic). Transport failures
// drop the batch: replication is best-effort, the owner's state converges
// through later publications and snapshot bootstrap. Returns the number of
// records accepted by owners.
func (n *Node) FlushReplication(ctx context.Context) int {
	n.mu.Lock()
	queue := n.pending
	n.pending = nil
	ring := n.ring
	n.mu.Unlock()
	if len(queue) == 0 {
		return 0
	}

	byOwner := make(map[string][]Replica)
	var owners []string
	for _, r := range queue {
		owner := ring.Owner(int(r.Shard))
		if owner == n.cfg.NodeID {
			continue // membership changed; we own it now
		}
		if _, ok := byOwner[owner]; !ok {
			owners = append(owners, owner)
		}
		byOwner[owner] = append(byOwner[owner], r)
	}
	sort.Strings(owners)

	accepted := 0
	for _, owner := range owners {
		n.mu.Lock()
		tr := n.peers[owner]
		n.mu.Unlock()
		recs := byOwner[owner]
		if tr == nil {
			n.addStats(func(s *Stats) { s.ReplicateDropped += uint64(len(recs)) })
			continue
		}
		for len(recs) > 0 {
			batch := recs
			if len(batch) > MaxBatch {
				batch = batch[:MaxBatch]
			}
			recs = recs[len(batch):]
			resp, err := tr.Replicate(ctx, ReplicateRequest{Origin: n.cfg.NodeID, Records: batch})
			if err != nil {
				n.addStats(func(s *Stats) { s.ReplicateDropped += uint64(len(batch)) })
				continue
			}
			accepted += int(resp.Accepted)
			n.addStats(func(s *Stats) {
				s.Replicated += uint64(resp.Accepted)
				s.ReplicateRejected += uint64(resp.Rejected)
			})
		}
	}
	return accepted
}

// RemoteAdopt resolves a local adoption miss against the cluster:
// the adoption cache first, then a pull-on-miss lookup to the shard owner.
// It returns the serving record on success. Keys this node owns never go
// remote — the local shared tier already answered authoritatively.
func (n *Node) RemoteAdopt(ctx context.Context, k Key, size uint64) (Remote, bool) {
	n.mu.Lock()
	ring := n.ring
	n.mu.Unlock()
	owner := ring.OwnerOf(k)
	if owner == n.cfg.NodeID {
		return Remote{}, false
	}
	if r, ok := n.cache.Get(k, size); ok {
		n.addStats(func(s *Stats) { s.PeerAdoptions++ })
		return r, true
	}
	n.mu.Lock()
	tr := n.peers[owner]
	n.mu.Unlock()
	if tr == nil {
		n.addStats(func(s *Stats) { s.PeerLookupErrors++ })
		return Remote{}, false
	}
	q := LookupRequest{Key: k, Size: size, Shard: uint32(k.Shard(ring.Shards()))}
	start := n.cfg.Clock.Now()
	resp, err := tr.Lookup(ctx, q)
	elapsed := n.cfg.Clock.Since(start).Seconds()
	if err != nil {
		n.addStats(func(s *Stats) {
			s.PeerLookups++
			s.PeerLookupErrors++
			s.LookupSeconds += elapsed
		})
		return Remote{}, false
	}
	if !resp.Found || resp.Size != size {
		n.addStats(func(s *Stats) {
			s.PeerLookups++
			s.PeerLookupMisses++
			s.LookupSeconds += elapsed
		})
		return Remote{}, false
	}
	r := Remote{Node: owner, TraceID: resp.TraceID, Key: k, Size: size}
	n.cache.Put(r)
	n.addStats(func(s *Stats) {
		s.PeerLookups++
		s.PeerAdoptions++
		s.LookupSeconds += elapsed
	})
	return r, true
}

func (n *Node) addStats(f func(*Stats)) {
	n.mu.Lock()
	f(&n.stats)
	n.mu.Unlock()
}

// Stats snapshots the node's counters.
func (n *Node) Stats() Stats {
	n.mu.Lock()
	s := n.stats
	n.mu.Unlock()
	s.Adoption = n.cache.Stats()
	return s
}

// Cache exposes the adoption cache (metrics and tests).
func (n *Node) Cache() *AdoptionCache { return n.cache }
