package isa

import "testing"

// FuzzDecode feeds arbitrary bytes to the instruction decoder: no panics,
// and any instruction that decodes must re-encode to the same bytes.
func FuzzDecode(f *testing.F) {
	if b, err := EncodeAll([]Inst{{Op: OpMovImm, Rd: 1, Imm: 42}, {Op: OpJmp, Target: 0x100}}); err == nil {
		f.Add(b)
	}
	f.Add([]byte{0})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		in, n, err := Decode(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(data))
		}
		out, err := Encode(nil, in)
		if err != nil {
			t.Fatalf("re-encoding decoded inst %+v: %v", in, err)
		}
		if len(out) != n {
			t.Fatalf("size changed: %d -> %d", n, len(out))
		}
		for i := range out {
			// Reserved byte 3 of 4+-byte forms may carry junk the decoder
			// ignores; everything the decoder reads must round-trip.
			if i == 3 && in.Op != OpSyscall {
				continue
			}
			if out[i] != data[i] {
				t.Fatalf("byte %d changed: %#x -> %#x (inst %+v)", i, data[i], out[i], in)
			}
		}
	})
}
