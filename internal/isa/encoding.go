package isa

import (
	"encoding/binary"
	"fmt"
)

// The binary encoding is little-endian and byte-oriented:
//
//	byte 0: opcode
//	byte 1: Rd in the low nibble, Rs1 in the high nibble
//	byte 2 (4+ byte forms): Rs2 in the low nibble, Cond in the high nibble
//	byte 3 (4+ byte forms): reserved, zero
//	remaining bytes: the immediate (32-bit) or target (32-bit) operand,
//	depending on the opcode, truncated to the space the format leaves.
//
// 6-byte forms carry a 16-bit immediate; 8-byte forms carry a 32-bit
// immediate or target. The encoding exists so the code cache can hold real
// bytes and the relocator can patch targets in place, exactly as a dynamic
// optimizer must.

// Encode appends the binary encoding of the instruction to dst and returns
// the extended slice.
func Encode(dst []byte, in Inst) ([]byte, error) {
	if !in.Op.Valid() {
		return dst, fmt.Errorf("isa: encode: invalid opcode %d", in.Op)
	}
	size := in.Op.Size()
	start := len(dst)
	for i := 0; i < size; i++ {
		dst = append(dst, 0)
	}
	b := dst[start:]
	b[0] = byte(in.Op)
	b[1] = byte(in.Rd&0x0f) | byte(in.Rs1&0x0f)<<4
	if size >= 4 {
		b[2] = byte(in.Rs2&0x0f) | byte(in.Cond&0x0f)<<4
	}
	switch size {
	case 4:
		// OpSyscall keeps a small immediate in byte 3.
		if in.Op == OpSyscall {
			b[3] = byte(in.Imm)
		}
	case 6:
		binary.LittleEndian.PutUint16(b[4:], uint16(in.Imm))
	case 8:
		if in.IsDirect() {
			binary.LittleEndian.PutUint32(b[4:], uint32(in.Target))
		} else {
			binary.LittleEndian.PutUint32(b[4:], uint32(in.Imm))
		}
	}
	return dst, nil
}

// Decode decodes one instruction from the front of b, returning the
// instruction and the number of bytes consumed.
func Decode(b []byte) (Inst, int, error) {
	if len(b) == 0 {
		return Inst{}, 0, fmt.Errorf("isa: decode: empty input")
	}
	op := Opcode(b[0])
	if !op.Valid() {
		return Inst{}, 0, fmt.Errorf("isa: decode: invalid opcode %d", b[0])
	}
	size := op.Size()
	if len(b) < size {
		return Inst{}, 0, fmt.Errorf("isa: decode: truncated %s: need %d bytes, have %d", op, size, len(b))
	}
	in := Inst{Op: op}
	if size >= 2 {
		in.Rd = Reg(b[1] & 0x0f)
		in.Rs1 = Reg(b[1] >> 4)
	}
	if size >= 4 {
		in.Rs2 = Reg(b[2] & 0x0f)
		in.Cond = Cond(b[2] >> 4)
	}
	switch size {
	case 4:
		if op == OpSyscall {
			in.Imm = int64(b[3])
		}
	case 6:
		in.Imm = int64(int16(binary.LittleEndian.Uint16(b[4:])))
	case 8:
		v := binary.LittleEndian.Uint32(b[4:])
		if in.IsDirect() {
			in.Target = uint64(v)
		} else {
			in.Imm = int64(int32(v))
		}
	}
	return in, size, nil
}

// EncodeAll encodes a full instruction sequence.
func EncodeAll(code []Inst) ([]byte, error) {
	out := make([]byte, 0, CodeSize(code))
	var err error
	for _, in := range code {
		out, err = Encode(out, in)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// DecodeAll decodes an entire byte slice into instructions.
func DecodeAll(b []byte) ([]Inst, error) {
	var out []Inst
	for len(b) > 0 {
		in, n, err := Decode(b)
		if err != nil {
			return nil, err
		}
		out = append(out, in)
		b = b[n:]
	}
	return out, nil
}

// PatchTarget rewrites the target field of the direct branch encoded at
// b[off:]. It is the primitive the code-cache relocator uses when moving a
// trace between caches.
func PatchTarget(b []byte, off int, target uint64) error {
	if off < 0 || off >= len(b) {
		return fmt.Errorf("isa: patch: offset %d out of range", off)
	}
	op := Opcode(b[off])
	if !op.Valid() {
		return fmt.Errorf("isa: patch: invalid opcode %d at offset %d", b[off], off)
	}
	in := Inst{Op: op}
	if !in.IsDirect() {
		return fmt.Errorf("isa: patch: %s at offset %d is not a direct transfer", op, off)
	}
	if off+op.Size() > len(b) {
		return fmt.Errorf("isa: patch: truncated %s at offset %d", op, off)
	}
	binary.LittleEndian.PutUint32(b[off+4:], uint32(target))
	return nil
}
