package isa

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestOpcodeSizesDefined(t *testing.T) {
	for op := Opcode(0); op.Valid(); op++ {
		if op.Size() <= 0 {
			t.Errorf("opcode %s has no size", op)
		}
		if op.Size()%2 != 0 {
			t.Errorf("opcode %s has odd size %d", op, op.Size())
		}
		if !strings.Contains(op.String(), "op(") && op.String() == "" {
			t.Errorf("opcode %d has no name", op)
		}
	}
}

func TestInvalidOpcode(t *testing.T) {
	op := Opcode(200)
	if op.Valid() {
		t.Fatal("opcode 200 should be invalid")
	}
	if op.Size() != 0 {
		t.Errorf("invalid opcode size = %d, want 0", op.Size())
	}
	if !strings.Contains(op.String(), "op(200)") {
		t.Errorf("invalid opcode name = %q", op.String())
	}
}

func TestCondNegate(t *testing.T) {
	for c := Cond(0); c < condCount; c++ {
		n := c.Negate()
		if n == c {
			t.Errorf("Negate(%s) == %s", c, c)
		}
		if n.Negate() != c {
			t.Errorf("double negation of %s = %s", c, n.Negate())
		}
	}
}

func TestBranchClassification(t *testing.T) {
	cases := []struct {
		in                     Inst
		branch, cond, dir, ind bool
	}{
		{Inst{Op: OpAdd}, false, false, false, false},
		{Inst{Op: OpJmp, Target: 8}, true, false, true, false},
		{Inst{Op: OpJcc, Target: 8}, true, true, true, false},
		{Inst{Op: OpJmpInd, Rs1: 3}, true, false, false, true},
		{Inst{Op: OpCall, Target: 8}, true, false, true, false},
		{Inst{Op: OpCallInd, Rs1: 3}, true, false, false, true},
		{Inst{Op: OpRet}, true, false, false, true},
		{Inst{Op: OpHalt}, true, false, false, false},
		{Inst{Op: OpSyscall}, false, false, false, false},
	}
	for _, c := range cases {
		if got := c.in.IsBranch(); got != c.branch {
			t.Errorf("%s: IsBranch = %v, want %v", c.in, got, c.branch)
		}
		if got := c.in.IsConditional(); got != c.cond {
			t.Errorf("%s: IsConditional = %v, want %v", c.in, got, c.cond)
		}
		if got := c.in.IsDirect(); got != c.dir {
			t.Errorf("%s: IsDirect = %v, want %v", c.in, got, c.dir)
		}
		if got := c.in.IsIndirect(); got != c.ind {
			t.Errorf("%s: IsIndirect = %v, want %v", c.in, got, c.ind)
		}
	}
}

func TestIsBackward(t *testing.T) {
	j := Inst{Op: OpJmp, Target: 100}
	if !j.IsBackward(100) {
		t.Error("branch to own address should be backward")
	}
	if !j.IsBackward(200) {
		t.Error("branch to lower address should be backward")
	}
	if j.IsBackward(50) {
		t.Error("branch to higher address should not be backward")
	}
	call := Inst{Op: OpCall, Target: 10}
	if call.IsBackward(100) {
		t.Error("calls are never backward branches for trace selection")
	}
	ind := Inst{Op: OpJmpInd}
	if ind.IsBackward(100) {
		t.Error("indirect branches have no static direction")
	}
}

func TestEndsBlock(t *testing.T) {
	if (Inst{Op: OpAdd}).EndsBlock() {
		t.Error("add should not end a block")
	}
	for _, op := range []Opcode{OpJmp, OpJcc, OpJmpInd, OpCall, OpCallInd, OpRet, OpSyscall, OpHalt} {
		if !(Inst{Op: op}).EndsBlock() {
			t.Errorf("%s should end a block", op)
		}
	}
}

func randInst(r *rand.Rand) Inst {
	op := Opcode(r.Intn(OpcodeCount))
	in := Inst{
		Op:  op,
		Rd:  Reg(r.Intn(NumRegs)),
		Rs1: Reg(r.Intn(NumRegs)),
		Rs2: Reg(r.Intn(NumRegs)),
	}
	switch op.Size() {
	case 4:
		if op == OpSyscall {
			in.Imm = int64(r.Intn(5))
		}
		if op == OpJcc { // never 4 bytes, but keep Cond valid anyway
			in.Cond = Cond(r.Intn(int(condCount)))
		}
	case 6:
		in.Imm = int64(int16(r.Uint32()))
	case 8:
		if in.IsDirect() {
			in.Target = uint64(r.Uint32())
			in.Cond = Cond(r.Intn(int(condCount)))
		} else {
			in.Imm = int64(int32(r.Uint32()))
		}
	}
	return in
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		in := randInst(r)
		b, err := Encode(nil, in)
		if err != nil {
			t.Fatalf("encode %v: %v", in, err)
		}
		if len(b) != in.Size() {
			t.Fatalf("%s: encoded %d bytes, size says %d", in, len(b), in.Size())
		}
		got, n, err := Decode(b)
		if err != nil {
			t.Fatalf("decode %v: %v", in, err)
		}
		if n != len(b) {
			t.Fatalf("%s: decode consumed %d of %d bytes", in, n, len(b))
		}
		// Normalize fields the encoding legitimately drops.
		want := in
		if want.Op.Size() < 4 {
			want.Rs2, want.Cond = 0, 0
		}
		if !want.IsDirect() || want.Op.Size() != 8 {
			// Cond only survives in 4+ byte forms; Target only in direct 8-byte forms.
		}
		if got != want {
			t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", want, got)
		}
	}
}

func TestEncodeAllDecodeAll(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	code := make([]Inst, 200)
	for i := range code {
		in := randInst(r)
		if in.Op.Size() < 4 {
			in.Rs2, in.Cond = 0, 0
		}
		code[i] = in
	}
	b, err := EncodeAll(code)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != CodeSize(code) {
		t.Fatalf("encoded %d bytes, CodeSize says %d", len(b), CodeSize(code))
	}
	got, err := DecodeAll(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(code) {
		t.Fatalf("decoded %d instructions, want %d", len(got), len(code))
	}
	for i := range code {
		if got[i] != code[i] {
			t.Fatalf("inst %d mismatch: %+v vs %+v", i, code[i], got[i])
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode(nil); err == nil {
		t.Error("decoding empty input should fail")
	}
	if _, _, err := Decode([]byte{200}); err == nil {
		t.Error("decoding invalid opcode should fail")
	}
	if _, _, err := Decode([]byte{byte(OpJmp), 0, 0}); err == nil {
		t.Error("decoding truncated jmp should fail")
	}
	if _, err := Encode(nil, Inst{Op: Opcode(99)}); err == nil {
		t.Error("encoding invalid opcode should fail")
	}
}

func TestPatchTarget(t *testing.T) {
	code := []Inst{
		{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: OpJmp, Target: 0x1234},
	}
	b, err := EncodeAll(code)
	if err != nil {
		t.Fatal(err)
	}
	off := code[0].Size()
	if err := PatchTarget(b, off, 0xdeadbe); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeAll(b)
	if err != nil {
		t.Fatal(err)
	}
	if got[1].Target != 0xdeadbe {
		t.Fatalf("patched target = %#x, want 0xdeadbe", got[1].Target)
	}

	if err := PatchTarget(b, 0, 1); err == nil {
		t.Error("patching a non-branch should fail")
	}
	if err := PatchTarget(b, -1, 1); err == nil {
		t.Error("patching negative offset should fail")
	}
	if err := PatchTarget(b, len(b), 1); err == nil {
		t.Error("patching past end should fail")
	}
	if err := PatchTarget(b, len(b)-2, 1); err == nil {
		t.Error("patching truncated branch should fail")
	}
	if err := PatchTarget([]byte{250}, 0, 1); err == nil {
		t.Error("patching invalid opcode should fail")
	}
}

// Property: encoded size always matches Opcode.Size, and decode of any
// encodable instruction consumes exactly that many bytes.
func TestQuickEncodeSize(t *testing.T) {
	f := func(opRaw, rd, rs1, rs2, cond uint8, imm int32, target uint32) bool {
		op := Opcode(opRaw % uint8(OpcodeCount))
		in := Inst{
			Op:   op,
			Rd:   Reg(rd % NumRegs),
			Rs1:  Reg(rs1 % NumRegs),
			Rs2:  Reg(rs2 % NumRegs),
			Cond: Cond(cond % uint8(condCount)),
			Imm:  int64(imm),
		}
		if in.IsDirect() {
			in.Target = uint64(target)
		}
		b, err := Encode(nil, in)
		if err != nil {
			return false
		}
		if len(b) != op.Size() {
			return false
		}
		_, n, err := Decode(b)
		return err == nil && n == op.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestInstString(t *testing.T) {
	// Every opcode must render without the "?" fallback.
	for op := Opcode(0); op.Valid(); op++ {
		in := Inst{Op: op, Rd: 1, Rs1: 2, Rs2: 3, Imm: 7, Target: 0x10}
		s := in.String()
		if s == "" || strings.HasSuffix(s, "?") {
			t.Errorf("opcode %s renders as %q", op, s)
		}
	}
}

func TestCodeSizeEmpty(t *testing.T) {
	if CodeSize(nil) != 0 {
		t.Error("empty code should have size 0")
	}
}
