// Package isa defines the synthetic instruction set executed by the
// reproduction's virtual machine and manipulated by the dynamic optimizer.
//
// The ISA is deliberately small but carries everything a dynamic binary
// translator cares about: variable-length encodings (so code-cache fragments
// vary in size), a full complement of direct, conditional, and indirect
// control transfers (so trace selection sees realistic control flow), and a
// syscall instruction (so guests can load and unload modules, the event that
// forces program-driven code-cache evictions in the paper).
package isa

import "fmt"

// Reg identifies one of the sixteen general-purpose registers r0..r15.
type Reg uint8

// NumRegs is the size of the architectural register file.
const NumRegs = 16

func (r Reg) String() string { return fmt.Sprintf("r%d", uint8(r)) }

// Opcode enumerates every instruction kind in the synthetic ISA.
type Opcode uint8

const (
	// OpNop does nothing. 2 bytes.
	OpNop Opcode = iota
	// OpMovImm loads a 32-bit immediate into Rd. 8 bytes.
	OpMovImm
	// OpMov copies Rs1 into Rd. 4 bytes.
	OpMov
	// OpAdd computes Rd = Rs1 + Rs2. 4 bytes.
	OpAdd
	// OpAddImm computes Rd = Rs1 + Imm. 6 bytes.
	OpAddImm
	// OpSub computes Rd = Rs1 - Rs2. 4 bytes.
	OpSub
	// OpMul computes Rd = Rs1 * Rs2. 4 bytes.
	OpMul
	// OpAnd computes Rd = Rs1 & Rs2. 4 bytes.
	OpAnd
	// OpOr computes Rd = Rs1 | Rs2. 4 bytes.
	OpOr
	// OpXor computes Rd = Rs1 ^ Rs2. 4 bytes.
	OpXor
	// OpShl computes Rd = Rs1 << (Imm & 63). 6 bytes.
	OpShl
	// OpShr computes Rd = Rs1 >> (Imm & 63) (logical). 6 bytes.
	OpShr
	// OpLoad loads a 64-bit word: Rd = mem[Rs1 + Imm]. 6 bytes.
	OpLoad
	// OpStore stores a 64-bit word: mem[Rs1 + Imm] = Rs2. 6 bytes.
	OpStore
	// OpCmp compares Rs1 with Rs2 and sets the machine flags. 4 bytes.
	OpCmp
	// OpCmpImm compares Rs1 with Imm and sets the machine flags. 6 bytes.
	OpCmpImm
	// OpJmp is an unconditional direct branch to Target. 8 bytes.
	OpJmp
	// OpJcc is a conditional direct branch: taken to Target when the flags
	// satisfy Cond, otherwise execution falls through. 8 bytes.
	OpJcc
	// OpJmpInd is an indirect branch through Rs1. 4 bytes.
	OpJmpInd
	// OpCall is a direct call to Target; the return address is pushed on the
	// machine call stack. 8 bytes.
	OpCall
	// OpCallInd is an indirect call through Rs1. 4 bytes.
	OpCallInd
	// OpRet returns to the address on top of the call stack. 2 bytes.
	OpRet
	// OpSyscall requests a service from the host environment; Imm selects
	// the service (see the Sys* constants). 4 bytes.
	OpSyscall
	// OpHalt stops the machine. 2 bytes.
	OpHalt

	opcodeCount // sentinel; keep last
)

// OpcodeCount reports the number of defined opcodes.
const OpcodeCount = int(opcodeCount)

var opcodeNames = [...]string{
	OpNop:     "nop",
	OpMovImm:  "movi",
	OpMov:     "mov",
	OpAdd:     "add",
	OpAddImm:  "addi",
	OpSub:     "sub",
	OpMul:     "mul",
	OpAnd:     "and",
	OpOr:      "or",
	OpXor:     "xor",
	OpShl:     "shl",
	OpShr:     "shr",
	OpLoad:    "ld",
	OpStore:   "st",
	OpCmp:     "cmp",
	OpCmpImm:  "cmpi",
	OpJmp:     "jmp",
	OpJcc:     "jcc",
	OpJmpInd:  "jmpi",
	OpCall:    "call",
	OpCallInd: "calli",
	OpRet:     "ret",
	OpSyscall: "sys",
	OpHalt:    "halt",
}

func (op Opcode) String() string {
	if int(op) < len(opcodeNames) && opcodeNames[op] != "" {
		return opcodeNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Valid reports whether op is a defined opcode.
func (op Opcode) Valid() bool { return op < opcodeCount }

var opcodeSizes = [...]uint8{
	OpNop:     2,
	OpMovImm:  8,
	OpMov:     4,
	OpAdd:     4,
	OpAddImm:  6,
	OpSub:     4,
	OpMul:     4,
	OpAnd:     4,
	OpOr:      4,
	OpXor:     4,
	OpShl:     6,
	OpShr:     6,
	OpLoad:    6,
	OpStore:   6,
	OpCmp:     4,
	OpCmpImm:  6,
	OpJmp:     8,
	OpJcc:     8,
	OpJmpInd:  4,
	OpCall:    8,
	OpCallInd: 4,
	OpRet:     2,
	OpSyscall: 4,
	OpHalt:    2,
}

// Size returns the encoded size, in bytes, of an instruction with opcode op.
func (op Opcode) Size() int {
	if !op.Valid() {
		return 0
	}
	return int(opcodeSizes[op])
}

// Cond enumerates the condition codes usable by OpJcc.
type Cond uint8

const (
	// CondEQ is taken when the last comparison found its operands equal.
	CondEQ Cond = iota
	// CondNE is taken when the last comparison found its operands unequal.
	CondNE
	// CondLT is taken when Rs1 < Rs2 (signed) in the last comparison.
	CondLT
	// CondGE is taken when Rs1 >= Rs2 (signed) in the last comparison.
	CondGE
	// CondGT is taken when Rs1 > Rs2 (signed) in the last comparison.
	CondGT
	// CondLE is taken when Rs1 <= Rs2 (signed) in the last comparison.
	CondLE

	condCount
)

var condNames = [...]string{"eq", "ne", "lt", "ge", "gt", "le"}

func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return fmt.Sprintf("cond(%d)", uint8(c))
}

// Negate returns the condition that is taken exactly when c is not.
func (c Cond) Negate() Cond {
	switch c {
	case CondEQ:
		return CondNE
	case CondNE:
		return CondEQ
	case CondLT:
		return CondGE
	case CondGE:
		return CondLT
	case CondGT:
		return CondLE
	case CondLE:
		return CondGT
	}
	return c
}

// Syscall service numbers understood by the virtual machine.
const (
	// SysExit terminates the guest. r1 holds the exit code.
	SysExit = 0
	// SysWrite emits the low byte of r1 to the machine's output buffer.
	SysWrite = 1
	// SysLoadModule asks the host to map the module whose ID is in r1.
	SysLoadModule = 2
	// SysUnloadModule asks the host to unmap the module whose ID is in r1.
	SysUnloadModule = 3
	// SysClock reads the machine's instruction counter into r1.
	SysClock = 4
)

// Inst is one decoded instruction. The zero value is a valid OpNop.
type Inst struct {
	Op     Opcode
	Rd     Reg    // destination register
	Rs1    Reg    // first source register
	Rs2    Reg    // second source register
	Cond   Cond   // condition, for OpJcc
	Imm    int64  // immediate operand
	Target uint64 // branch/call target address, for direct transfers
}

// Size returns the encoded size of the instruction in bytes.
func (in Inst) Size() int { return in.Op.Size() }

// IsBranch reports whether the instruction transfers control anywhere other
// than the next sequential instruction (calls and returns included).
func (in Inst) IsBranch() bool {
	switch in.Op {
	case OpJmp, OpJcc, OpJmpInd, OpCall, OpCallInd, OpRet, OpHalt:
		return true
	}
	return false
}

// IsConditional reports whether the instruction may either transfer control
// or fall through depending on machine state.
func (in Inst) IsConditional() bool { return in.Op == OpJcc }

// IsDirect reports whether the instruction's target is encoded in the
// instruction itself (and can therefore be rewritten by the relocator).
func (in Inst) IsDirect() bool {
	switch in.Op {
	case OpJmp, OpJcc, OpCall:
		return true
	}
	return false
}

// IsIndirect reports whether the instruction's target comes from a register
// or the call stack at run time.
func (in Inst) IsIndirect() bool {
	switch in.Op {
	case OpJmpInd, OpCallInd, OpRet:
		return true
	}
	return false
}

// IsCall reports whether the instruction is a (direct or indirect) call.
func (in Inst) IsCall() bool { return in.Op == OpCall || in.Op == OpCallInd }

// IsBackward reports whether the instruction is a direct branch whose target
// does not lie after the instruction's own address pc. Backward branches
// signal loops to the trace selector.
func (in Inst) IsBackward(pc uint64) bool {
	return in.IsDirect() && in.Op != OpCall && in.Target <= pc
}

// EndsBlock reports whether the instruction must terminate a basic block.
func (in Inst) EndsBlock() bool {
	return in.IsBranch() || in.Op == OpSyscall
}

func (in Inst) String() string {
	switch in.Op {
	case OpNop, OpRet, OpHalt:
		return in.Op.String()
	case OpMovImm:
		return fmt.Sprintf("%s %s, #%d", in.Op, in.Rd, in.Imm)
	case OpMov:
		return fmt.Sprintf("%s %s, %s", in.Op, in.Rd, in.Rs1)
	case OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Rd, in.Rs1, in.Rs2)
	case OpAddImm, OpShl, OpShr:
		return fmt.Sprintf("%s %s, %s, #%d", in.Op, in.Rd, in.Rs1, in.Imm)
	case OpLoad:
		return fmt.Sprintf("%s %s, [%s+%d]", in.Op, in.Rd, in.Rs1, in.Imm)
	case OpStore:
		return fmt.Sprintf("%s [%s+%d], %s", in.Op, in.Rs1, in.Imm, in.Rs2)
	case OpCmp:
		return fmt.Sprintf("%s %s, %s", in.Op, in.Rs1, in.Rs2)
	case OpCmpImm:
		return fmt.Sprintf("%s %s, #%d", in.Op, in.Rs1, in.Imm)
	case OpJmp, OpCall:
		return fmt.Sprintf("%s 0x%x", in.Op, in.Target)
	case OpJcc:
		return fmt.Sprintf("j%s 0x%x", in.Cond, in.Target)
	case OpJmpInd, OpCallInd:
		return fmt.Sprintf("%s %s", in.Op, in.Rs1)
	case OpSyscall:
		return fmt.Sprintf("%s #%d", in.Op, in.Imm)
	}
	return fmt.Sprintf("%s ?", in.Op)
}

// CodeSize returns the total encoded size of a sequence of instructions.
func CodeSize(code []Inst) int {
	n := 0
	for _, in := range code {
		n += in.Size()
	}
	return n
}
