// The shared-vs-isolated experiment: N instances of one application run
// either as N fully isolated engines (the paper's model — every process pays
// for every trace it executes) or as N front-end processes over one shared
// persistent generation (the ShareJIT-style extension). The comparison
// quantifies what sharing buys: traces a later process adopts from the
// shared tier are generations it never pays for.

package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/dbt"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// SharedVsIsolatedRow compares N isolated engines against N processes over
// one shared persistent tier, for one benchmark.
type SharedVsIsolatedRow struct {
	Name  string
	Procs int
	// CapacityBytes is the per-process cache capacity (half the benchmark's
	// unbounded peak, the same sizing rule the capacity sweeps use).
	CapacityBytes uint64

	// Trace generations actually paid (cold creations + regenerations),
	// summed across processes.
	IsolatedGens uint64
	SharedGens   uint64
	// Adopted counts shared-tier attachments: generations the shared
	// configuration avoided by reusing a peer's trace.
	Adopted uint64

	IsolatedMissRate float64
	SharedMissRate   float64

	// Overheads are total modeled instruction costs (engine + cache
	// management), summed across processes.
	IsolatedOverhead float64
	SharedOverhead   float64

	// Memory footprints: isolated pays N full caches; shared pays one
	// persistent arena plus N private nursery/probation pairs.
	IsolatedFootprintBytes uint64
	SharedFootprintBytes   uint64

	// SharedTier is the shared tier's own counter set after the run.
	SharedTier core.SharedStats
}

// GensSaved returns the fraction of isolated generations the shared
// configuration avoided; positive means sharing helped.
func (r SharedVsIsolatedRow) GensSaved() float64 {
	if r.IsolatedGens == 0 {
		return 0
	}
	return 1 - float64(r.SharedGens)/float64(r.IsolatedGens)
}

// SharedVsIsolated runs the comparison for every collected benchmark. Both
// arms execute procs full engine runs with process-varied drivers
// (workload.NewDriverProc), so the two arms see identical guest work; the
// shared arm interleaves its processes on the deterministic staggered
// round-robin schedule so earlier processes warm the tier for later ones.
func SharedVsIsolated(s *Suite, procs int) ([]SharedVsIsolatedRow, error) {
	if procs < 2 {
		return nil, fmt.Errorf("experiments: shared-vs-isolated needs at least 2 processes, got %d", procs)
	}
	return perRun(s, func(r *Run) (SharedVsIsolatedRow, error) {
		return sharedVsIsolatedOne(r, s.Model, procs)
	})
}

// sharedCapacityFor sizes the per-process cache off the unbounded run: half
// the peak live trace bytes, floored so tiny benchmarks stay runnable.
func sharedCapacityFor(r *Run) uint64 {
	capacity := r.MaxTraceBytes() / 2
	if capacity < 4096 {
		capacity = 4096
	}
	return capacity
}

func sharedVsIsolatedOne(r *Run, model costmodel.Model, procs int) (SharedVsIsolatedRow, error) {
	bench, err := workload.Synthesize(r.Profile)
	if err != nil {
		return SharedVsIsolatedRow{}, err
	}
	capacity := sharedCapacityFor(r)
	cfg := core.Layout451045Threshold1(capacity)
	row := SharedVsIsolatedRow{
		Name:          r.Profile.Name,
		Procs:         procs,
		CapacityBytes: capacity,
	}

	// Isolated arm: N independent engines, each with a fully private
	// generational cache of the full capacity.
	isoMgrCost := costmodel.NewAccum(model)
	var isoStats dbt.RunStats
	for p := 0; p < procs; p++ {
		mgr, err := core.NewGenerational(cfg, sim.CostObserver(isoMgrCost))
		if err != nil {
			return row, err
		}
		eng, err := dbt.New(bench.Image, dbt.Config{Manager: mgr, Model: &model})
		if err != nil {
			return row, err
		}
		if err := eng.Run(bench.NewDriverProc(p), 0); err != nil {
			return row, fmt.Errorf("experiments: isolated %s proc %d: %w", r.Profile.Name, p, err)
		}
		isoStats.Merge(eng.Stats())
		row.IsolatedOverhead += eng.Overhead().Total()
	}
	row.IsolatedOverhead += isoMgrCost.Total()
	row.IsolatedGens = isoStats.TracesCreated + isoStats.Regens
	if isoStats.Accesses > 0 {
		row.IsolatedMissRate = float64(isoStats.Misses) / float64(isoStats.Accesses)
	}
	row.IsolatedFootprintBytes = uint64(procs) * capacity

	// Shared arm: one persistent tier, N front-end processes with private
	// nursery/probation pairs of the same per-process fractions. The tier
	// pools the N isolated persistent shares into one arena — the same
	// aggregate persistent memory, but traces common across processes (the
	// application's hot core) occupy it once instead of N times.
	shMgrCost := costmodel.NewAccum(model)
	spCap := uint64(procs) * uint64(float64(capacity)*cfg.PersistentFrac)
	sp := core.NewSharedPersistent(spCap, nil, sim.CostObserver(shMgrCost))
	sys := dbt.NewSystem(sp)
	guests := make([]dbt.Guest, procs)
	for p := 0; p < procs; p++ {
		mgr, err := core.NewGenerationalShared(cfg, sp, p, sim.CostObserver(shMgrCost))
		if err != nil {
			return row, err
		}
		if _, err := sys.NewProcess(p, bench.Image, dbt.Config{Manager: mgr, Model: &model}); err != nil {
			return row, err
		}
		guests[p] = bench.NewDriverProc(p)
	}
	stagger := bench.TotalBudget() / uint64(2*procs)
	if err := sys.RunRoundRobin(guests, 64, stagger, 0); err != nil {
		return row, fmt.Errorf("experiments: shared %s: %w", r.Profile.Name, err)
	}
	var shStats dbt.RunStats
	for _, proc := range sys.Procs() {
		shStats.Merge(proc.Stats())
		row.SharedOverhead += proc.Overhead().Total()
	}
	row.SharedOverhead += shMgrCost.Total()
	row.SharedGens = shStats.TracesCreated + shStats.Regens
	row.Adopted = shStats.SharedAdopted
	if shStats.Accesses > 0 {
		row.SharedMissRate = float64(shStats.Misses) / float64(shStats.Accesses)
	}
	priv := uint64(float64(capacity)*cfg.NurseryFrac) + uint64(float64(capacity)*cfg.ProbationFrac)
	row.SharedFootprintBytes = spCap + uint64(procs)*priv
	row.SharedTier = sp.Stats()
	return row, nil
}

// RenderSharedVsIsolated renders the comparison as text.
func RenderSharedVsIsolated(rows []SharedVsIsolatedRow) string {
	t := stats.NewTable("Benchmark", "Procs", "Capacity", "IsoGens", "ShGens", "Adopted", "GensSaved", "IsoMiss", "ShMiss", "IsoMem", "ShMem")
	var isoG, shG, ad uint64
	for _, r := range rows {
		t.AddRow(r.Name, fmt.Sprintf("%d", r.Procs), stats.FmtBytes(r.CapacityBytes),
			fmt.Sprintf("%d", r.IsolatedGens), fmt.Sprintf("%d", r.SharedGens),
			fmt.Sprintf("%d", r.Adopted), fmt.Sprintf("%.1f%%", r.GensSaved()*100),
			fmt.Sprintf("%.4f", r.IsolatedMissRate), fmt.Sprintf("%.4f", r.SharedMissRate),
			stats.FmtBytes(r.IsolatedFootprintBytes), stats.FmtBytes(r.SharedFootprintBytes))
		isoG += r.IsolatedGens
		shG += r.SharedGens
		ad += r.Adopted
	}
	var saved float64
	if isoG > 0 {
		saved = 1 - float64(shG)/float64(isoG)
	}
	t.AddRow("(total)", "", "", fmt.Sprintf("%d", isoG), fmt.Sprintf("%d", shG),
		fmt.Sprintf("%d", ad), fmt.Sprintf("%.1f%%", saved*100), "", "", "", "")
	return t.String()
}
