package experiments

import (
	"strings"
	"testing"
)

func TestSharedVsIsolatedSavesGenerations(t *testing.T) {
	s, err := Collect(Options{Scale: 0.05, Benchmarks: []string{"gzip", "solitaire"}})
	if err != nil {
		t.Fatal(err)
	}
	const procs = 3
	rows, err := SharedVsIsolated(s, procs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.Procs != procs {
			t.Errorf("%s: procs = %d", r.Name, r.Procs)
		}
		if r.IsolatedGens == 0 || r.SharedGens == 0 {
			t.Fatalf("%s: degenerate generation counts %+v", r.Name, r)
		}
		// The headline claim: pooling the persistent tiers yields fewer
		// aggregate trace generations than N isolated engines.
		if r.SharedGens >= r.IsolatedGens {
			t.Errorf("%s: shared generations %d not below isolated %d",
				r.Name, r.SharedGens, r.IsolatedGens)
		}
		if r.Adopted == 0 {
			t.Errorf("%s: no adoptions", r.Name)
		}
		if r.GensSaved() <= 0 {
			t.Errorf("%s: GensSaved = %v", r.Name, r.GensSaved())
		}
		// Both arms were sized to the same aggregate memory (up to the
		// per-arena flooring of the fraction split).
		diff := int64(r.IsolatedFootprintBytes) - int64(r.SharedFootprintBytes)
		if diff < 0 {
			diff = -diff
		}
		if diff > int64(procs)*3 {
			t.Errorf("%s: footprints differ: shared %d vs isolated %d",
				r.Name, r.SharedFootprintBytes, r.IsolatedFootprintBytes)
		}
		if r.SharedTier.Promotions == 0 {
			t.Errorf("%s: shared tier saw no promotions", r.Name)
		}
	}
	out := RenderSharedVsIsolated(rows)
	for _, want := range []string{"gzip", "solitaire", "Adopted", "(total)"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestSharedVsIsolatedDeterministic(t *testing.T) {
	s, err := Collect(Options{Scale: 0.05, Benchmarks: []string{"gzip"}})
	if err != nil {
		t.Fatal(err)
	}
	run := func() SharedVsIsolatedRow {
		rows, err := SharedVsIsolated(s, 2)
		if err != nil {
			t.Fatal(err)
		}
		return rows[0]
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic experiment:\n%+v\n%+v", a, b)
	}
}

func TestSharedVsIsolatedRejectsSingleProc(t *testing.T) {
	s, err := Collect(Options{Scale: 0.05, Benchmarks: []string{"gzip"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SharedVsIsolated(s, 1); err == nil {
		t.Error("procs=1 accepted")
	}
}
