package experiments

import (
	"reflect"
	"testing"
)

// TestFigure9DeterministicAcrossParallelism is the pipeline's regression
// gate: collection and the Figure 9 replay matrix must produce identical
// typed rows at parallel=1 (exact sequential behaviour) and parallel=8,
// because every job owns its own seeded RNG and manager state and results
// aggregate by job index.
func TestFigure9DeterministicAcrossParallelism(t *testing.T) {
	collect := func(parallel int) *Suite {
		t.Helper()
		s, err := Collect(Options{
			Scale:      0.05,
			Benchmarks: []string{"art", "gzip", "solitaire"},
			Parallel:   parallel,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	seq := collect(1)
	par := collect(8)

	if len(seq.Runs) != len(par.Runs) {
		t.Fatalf("run counts differ: %d vs %d", len(seq.Runs), len(par.Runs))
	}
	for i := range seq.Runs {
		a, b := seq.Runs[i], par.Runs[i]
		if a.Profile.Name != b.Profile.Name {
			t.Fatalf("run %d: order differs (%s vs %s)", i, a.Profile.Name, b.Profile.Name)
		}
		if a.Stats != b.Stats {
			t.Errorf("%s: engine stats differ:\nseq %+v\npar %+v", a.Profile.Name, a.Stats, b.Stats)
		}
		if !reflect.DeepEqual(a.Events, b.Events) {
			t.Errorf("%s: event logs differ (%d vs %d events)", a.Profile.Name, len(a.Events), len(b.Events))
		}
	}

	figSeq, err := Figure9(seq)
	if err != nil {
		t.Fatal(err)
	}
	par.Parallel = 8
	figPar, err := Figure9(par)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(figSeq, figPar) {
		t.Errorf("Figure9 rows differ between parallel=1 and parallel=8:\nseq %+v\npar %+v", figSeq, figPar)
	}

	// Same suite replayed at both levels must agree too (replay-level
	// determinism, independent of collection).
	seq.Parallel = 8
	figSeq8, err := Figure9(seq)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(figSeq, figSeq8) {
		t.Error("Figure9 on the same suite differs across parallelism levels")
	}
}

// TestPolicySelectionDeterministicAcrossParallelism extends the gate to the
// online policy selector: shadow racing and switch decisions are keyed to
// the graph's access counter, so the full static-vs-selector comparison —
// miss rates, switch counts, final live policies — must be bit-identical run
// over run and at parallel=1 versus parallel=8.
func TestPolicySelectionDeterministicAcrossParallelism(t *testing.T) {
	s, err := Collect(Options{
		Scale:      0.05,
		Benchmarks: []string{"art", "gzip", "solitaire"},
		Parallel:   4,
	})
	if err != nil {
		t.Fatal(err)
	}

	s.Parallel = 1
	seq, err := PolicySelection(s)
	if err != nil {
		t.Fatal(err)
	}
	again, err := PolicySelection(s)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, again) {
		t.Errorf("selection rows differ across repeated runs:\nfirst %+v\nsecond %+v", seq, again)
	}

	s.Parallel = 8
	par, err := PolicySelection(s)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("selection rows differ between parallel=1 and parallel=8:\nseq %+v\npar %+v", seq, par)
	}

	// The determinism claim is only interesting if the selector actually
	// swapped a live policy during the replays.
	var switches uint64
	for _, r := range seq {
		switches += r.Switches
	}
	if switches == 0 {
		t.Error("selector applied no switches at this scale; test exercises nothing")
	}
}

// TestAdaptiveDeterministicAcrossParallelism extends the gate to the
// adaptive-split controller: its epoch clock is keyed to the graph's access
// counter, never to wall time or worker scheduling, so the full
// static-vs-adaptive comparison — miss rates, resize counts, reversals —
// must be bit-identical run over run and at parallel=1 versus parallel=8.
func TestAdaptiveDeterministicAcrossParallelism(t *testing.T) {
	s, err := Collect(Options{
		Scale:      0.05,
		Benchmarks: []string{"art", "gzip", "solitaire"},
		Parallel:   4,
	})
	if err != nil {
		t.Fatal(err)
	}

	s.Parallel = 1
	seq, err := AdaptiveVsStatic(s)
	if err != nil {
		t.Fatal(err)
	}
	again, err := AdaptiveVsStatic(s)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, again) {
		t.Errorf("adaptive rows differ across repeated runs:\nfirst %+v\nsecond %+v", seq, again)
	}

	s.Parallel = 8
	par, err := AdaptiveVsStatic(s)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("adaptive rows differ between parallel=1 and parallel=8:\nseq %+v\npar %+v", seq, par)
	}

	// The determinism claim is only interesting if the controller actually
	// moved capacity during the replays.
	var resizes uint64
	for _, r := range seq {
		resizes += r.Resizes
	}
	if resizes == 0 {
		t.Error("controller applied no resizes at this scale; test exercises nothing")
	}
}
