package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/pipeline"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// ---------------------------------------------------------------------------
// Table 1

// Table1Row is one interactive benchmark's description.
type Table1Row struct {
	Name        string
	Seconds     float64
	Description string
}

// Table1 reproduces the interactive-benchmark table.
func Table1() []Table1Row {
	var rows []Table1Row
	for _, p := range workload.Interactive() {
		rows = append(rows, Table1Row{Name: p.Name, Seconds: p.DurationSec, Description: p.Description})
	}
	return rows
}

// RenderTable1 renders Table 1 as text.
func RenderTable1(rows []Table1Row) string {
	t := stats.NewTable("Name", "Seconds", "Description")
	for _, r := range rows {
		t.AddRow(r.Name, fmt.Sprintf("%.0f", r.Seconds), r.Description)
	}
	return t.String()
}

// ---------------------------------------------------------------------------
// Figure 1: maximum code cache size under an unbounded cache

// Figure1Row is one benchmark's unbounded cache sizes (rescaled to full
// size).
type Figure1Row struct {
	Name    string
	Suite   workload.Suite
	TraceKB float64 // peak live trace-cache bytes (the paper's Figure 1 bar)
	TotalKB float64 // basic-block + trace cache peak
}

// Figure1Result aggregates the figure.
type Figure1Result struct {
	Rows            []Figure1Row
	SpecAvgKB       float64 // paper: ~736 KB
	InteractAvgKB   float64 // paper: ~16.1 MB = ~16500 KB
	LargestSpec     string  // paper: gcc (4.3 MB)
	LargestInteract string  // paper: word (34.2 MB)
	// MedianTraceBytes is the median trace size across every benchmark;
	// the paper reports 242 bytes (§6.2).
	MedianTraceBytes float64
}

// Figure1 reproduces the unbounded cache-size study (§3.1).
func Figure1(s *Suite) Figure1Result {
	var res Figure1Result
	var specSum, interSum float64
	var nSpec, nInter int
	var maxSpec, maxInter float64
	for _, r := range s.Runs {
		row := Figure1Row{
			Name:    r.Profile.Name,
			Suite:   r.Profile.Suite,
			TraceKB: s.rescale(float64(r.MaxTraceBytes())) / 1024,
			TotalKB: s.rescale(float64(r.Stats.PeakCacheBytes)) / 1024,
		}
		res.Rows = append(res.Rows, row)
		if row.Suite == workload.SuiteInteractive {
			interSum += row.TraceKB
			nInter++
			if row.TraceKB > maxInter {
				maxInter = row.TraceKB
				res.LargestInteract = row.Name
			}
		} else {
			specSum += row.TraceKB
			nSpec++
			if row.TraceKB > maxSpec {
				maxSpec = row.TraceKB
				res.LargestSpec = row.Name
			}
		}
	}
	if nSpec > 0 {
		res.SpecAvgKB = specSum / float64(nSpec)
	}
	if nInter > 0 {
		res.InteractAvgKB = interSum / float64(nInter)
	}
	var sizes []float64
	for _, r := range s.Runs {
		sizes = append(sizes, sizesOf(r.Summary.TraceSizes)...)
	}
	res.MedianTraceBytes = stats.Median(sizes)
	return res
}

// RenderFigure1 renders the figure as text.
func RenderFigure1(res Figure1Result) string {
	t := stats.NewTable("Benchmark", "Suite", "MaxTraceCache", "MaxTotalCache")
	for _, r := range res.Rows {
		t.AddRow(r.Name, r.Suite.String(),
			stats.FmtBytes(uint64(r.TraceKB*1024)), stats.FmtBytes(uint64(r.TotalKB*1024)))
	}
	t.AddRow("(spec avg)", "", stats.FmtBytes(uint64(res.SpecAvgKB*1024)), "")
	t.AddRow("(interactive avg)", "", stats.FmtBytes(uint64(res.InteractAvgKB*1024)), "")
	t.AddRow("(median trace)", "", fmt.Sprintf("%.0f B (paper: 242 B)", res.MedianTraceBytes), "")
	return t.String()
}

// ---------------------------------------------------------------------------
// Figure 2: code expansion

// Figure2Row is one benchmark's code-expansion factor (Equation 1).
type Figure2Row struct {
	Name      string
	Suite     workload.Suite
	Expansion float64 // finalCacheSize / applicationFootprint
}

// Figure2Result aggregates the figure.
type Figure2Result struct {
	Rows                     []Figure2Row
	SpecAvg, SpecStd         float64 // paper: ~5x, 111% stddev
	InteractAvg, InteractStd float64 // paper: ~5x, 59% stddev
}

// Figure2 reproduces the code-expansion study (§3.2, Equation 1).
func Figure2(s *Suite) Figure2Result {
	var res Figure2Result
	var spec, inter []float64
	for _, r := range s.Runs {
		exp := float64(r.Stats.PeakCacheBytes) / float64(r.Footprint)
		res.Rows = append(res.Rows, Figure2Row{Name: r.Profile.Name, Suite: r.Profile.Suite, Expansion: exp})
		if r.Profile.Suite == workload.SuiteInteractive {
			inter = append(inter, exp)
		} else {
			spec = append(spec, exp)
		}
	}
	res.SpecAvg, res.SpecStd = stats.Mean(spec), stats.StdDev(spec)
	res.InteractAvg, res.InteractStd = stats.Mean(inter), stats.StdDev(inter)
	return res
}

// RenderFigure2 renders the figure as text.
func RenderFigure2(res Figure2Result) string {
	t := stats.NewTable("Benchmark", "Suite", "Expansion")
	for _, r := range res.Rows {
		t.AddRow(r.Name, r.Suite.String(), fmt.Sprintf("%.0f%%", r.Expansion*100))
	}
	t.AddRow("(spec avg)", "", fmt.Sprintf("%.0f%% ± %.0f%%", res.SpecAvg*100, res.SpecStd*100))
	t.AddRow("(interactive avg)", "", fmt.Sprintf("%.0f%% ± %.0f%%", res.InteractAvg*100, res.InteractStd*100))
	return t.String()
}

// ---------------------------------------------------------------------------
// Figure 3: trace insertion rate

// Figure3Row is one benchmark's trace-insertion rate.
type Figure3Row struct {
	Name   string
	Suite  workload.Suite
	KBPerS float64
}

// Figure3 reproduces the trace-generation-frequency study (§3.3). Rates are
// rescaled to full size.
func Figure3(s *Suite) []Figure3Row {
	var rows []Figure3Row
	for _, r := range s.Runs {
		rate := s.rescale(float64(r.Stats.TraceBytes)) / 1024 / r.Profile.DurationSec
		rows = append(rows, Figure3Row{Name: r.Profile.Name, Suite: r.Profile.Suite, KBPerS: rate})
	}
	return rows
}

// RenderFigure3 renders the figure as text.
func RenderFigure3(rows []Figure3Row) string {
	t := stats.NewTable("Benchmark", "Suite", "TraceInsertRate")
	for _, r := range rows {
		t.AddRow(r.Name, r.Suite.String(), fmt.Sprintf("%.1f KB/s", r.KBPerS))
	}
	return t.String()
}

// ---------------------------------------------------------------------------
// Figure 4: unmapped-memory deletions

// Figure4Row is one benchmark's share of trace bytes deleted because their
// module was unmapped.
type Figure4Row struct {
	Name     string
	Suite    workload.Suite
	Unmapped float64 // fraction of created trace bytes
}

// Figure4Result aggregates the figure.
type Figure4Result struct {
	Rows        []Figure4Row
	InteractAvg float64 // paper: ~15%
}

// Figure4 reproduces the unmapped-memory study (§3.4).
func Figure4(s *Suite) Figure4Result {
	var res Figure4Result
	var inter []float64
	for _, r := range s.Runs {
		frac := 0.0
		if r.Stats.TraceBytes > 0 {
			frac = float64(r.Stats.UnmappedBytes) / float64(r.Stats.TraceBytes)
		}
		res.Rows = append(res.Rows, Figure4Row{Name: r.Profile.Name, Suite: r.Profile.Suite, Unmapped: frac})
		if r.Profile.Suite == workload.SuiteInteractive {
			inter = append(inter, frac)
		}
	}
	res.InteractAvg = stats.Mean(inter)
	return res
}

// RenderFigure4 renders the figure as text.
func RenderFigure4(res Figure4Result) string {
	t := stats.NewTable("Benchmark", "Suite", "UnmappedTraces")
	for _, r := range res.Rows {
		t.AddRow(r.Name, r.Suite.String(), stats.FmtPct(r.Unmapped))
	}
	t.AddRow("(interactive avg)", "", stats.FmtPct(res.InteractAvg))
	return t.String()
}

// ---------------------------------------------------------------------------
// Figure 6: trace lifetimes

// Figure6Row is one benchmark's lifetime distribution (Equation 2).
type Figure6Row struct {
	Name    string
	Suite   workload.Suite
	Short   float64 // lifetime < 20% of execution
	Mid     float64
	Long    float64   // lifetime > 80% of execution
	Buckets []float64 // ten 10%-wide buckets
}

// Figure6 reproduces the trace-lifetime study (§5.1).
func Figure6(s *Suite) []Figure6Row {
	var rows []Figure6Row
	for _, r := range s.Runs {
		total := float64(r.Stats.EndTime)
		short, mid, long := r.Lifetimes.Fractions(total, 0.2, 0.8)
		h := r.Lifetimes.Histogram(total, 10)
		buckets := make([]float64, 10)
		for i := range buckets {
			buckets[i] = h.Fraction(i)
		}
		rows = append(rows, Figure6Row{
			Name: r.Profile.Name, Suite: r.Profile.Suite,
			Short: short, Mid: mid, Long: long, Buckets: buckets,
		})
	}
	return rows
}

// RenderFigure6 renders the figure as text.
func RenderFigure6(rows []Figure6Row) string {
	t := stats.NewTable("Benchmark", "Suite", "<20%", "20-80%", ">80%")
	for _, r := range rows {
		t.AddRow(r.Name, r.Suite.String(), stats.FmtPct(r.Short), stats.FmtPct(r.Mid), stats.FmtPct(r.Long))
	}
	return t.String()
}

// ---------------------------------------------------------------------------
// Figures 9 and 10: generational vs unified miss rates

// Layouts evaluated by Figure 9, in the paper's order.
func figure9Layouts(capacity uint64) []core.Config {
	return []core.Config{
		core.Layout433Threshold10(capacity),
		core.Layout451045Threshold1(capacity),
		core.Layout104545Threshold10(capacity),
	}
}

// Figure9Row is one benchmark's miss-rate comparison. Reductions are
// 1 - generational/unified miss rate; positive is better.
type Figure9Row struct {
	Name            string
	Suite           workload.Suite
	CapacityKB      float64 // simulated total capacity (0.5 x maxCache), at scale
	UnifiedMissRate float64
	UnifiedMisses   uint64
	Reductions      []float64 // one per layout, Figure 9 bar heights
	Eliminated      []int64   // absolute misses eliminated (Figure 10)
	Configs         []string
}

// Figure9Result aggregates the figure.
type Figure9Result struct {
	Rows []Figure9Row
	// Averages holds the unweighted arithmetic mean reduction per layout,
	// split by suite, matching the paper's "Average" bars.
	SpecAvg     []float64
	InteractAvg []float64
	Configs     []string
}

// Figure9 reproduces the miss-rate evaluation (§6.1): each benchmark's log
// replays through a unified pseudo-circular cache sized at half its
// unbounded footprint, and through the three generational layouts of the
// same total capacity. Replays run on the suite's pipeline; rows and
// averages are aggregated in benchmark order regardless of parallelism.
func Figure9(s *Suite) (Figure9Result, error) {
	rows, err := perRun(s, func(r *Run) (*Figure9Row, error) {
		capacity := r.MaxTraceBytes() / 2
		if capacity == 0 {
			return nil, nil
		}
		u, err := sim.ReplayUnified(r.Profile.Name, r.Events, capacity, s.Model)
		if err != nil {
			return nil, err
		}
		row := &Figure9Row{
			Name:            r.Profile.Name,
			Suite:           r.Profile.Suite,
			CapacityKB:      float64(capacity) / 1024,
			UnifiedMissRate: u.MissRate(),
			UnifiedMisses:   u.Misses,
		}
		for _, cfg := range figure9Layouts(capacity) {
			g, err := sim.ReplayGenerational(r.Profile.Name, r.Events, cfg, s.Model)
			if err != nil {
				return nil, err
			}
			red := 0.0
			if u.MissRate() > 0 {
				red = 1 - g.MissRate()/u.MissRate()
			}
			row.Reductions = append(row.Reductions, red)
			row.Eliminated = append(row.Eliminated, int64(u.Misses)-int64(g.Misses))
			row.Configs = append(row.Configs, configLabel(cfg))
		}
		return row, nil
	})
	var res Figure9Result
	if err != nil {
		return res, err
	}
	var specSums, interSums []float64
	var nSpec, nInter int
	for _, row := range rows {
		if row == nil {
			continue
		}
		if res.Configs == nil {
			res.Configs = row.Configs
		}
		if specSums == nil {
			specSums = make([]float64, len(row.Reductions))
			interSums = make([]float64, len(row.Reductions))
		}
		if row.Suite == workload.SuiteInteractive {
			nInter++
			for i, v := range row.Reductions {
				interSums[i] += v
			}
		} else {
			nSpec++
			for i, v := range row.Reductions {
				specSums[i] += v
			}
		}
		res.Rows = append(res.Rows, *row)
	}
	for i := range specSums {
		if nSpec > 0 {
			specSums[i] /= float64(nSpec)
		}
		if nInter > 0 {
			interSums[i] /= float64(nInter)
		}
	}
	res.SpecAvg, res.InteractAvg = specSums, interSums
	return res, nil
}

func configLabel(cfg core.Config) string {
	return fmt.Sprintf("%.0f-%.0f-%.0f@%d",
		cfg.NurseryFrac*100, cfg.ProbationFrac*100, cfg.PersistentFrac*100, cfg.PromoteThreshold)
}

// RenderFigure9 renders the figure as text.
func RenderFigure9(res Figure9Result) string {
	header := []string{"Benchmark", "Suite", "UnifiedMissRate"}
	header = append(header, res.Configs...)
	t := stats.NewTable(header...)
	for _, r := range res.Rows {
		cells := []string{r.Name, r.Suite.String(), fmt.Sprintf("%.3f%%", r.UnifiedMissRate*100)}
		for _, red := range r.Reductions {
			cells = append(cells, fmt.Sprintf("%+.1f%%", red*100))
		}
		t.AddRow(cells...)
	}
	avgRow := func(label string, avgs []float64) {
		cells := []string{label, "", ""}
		for _, v := range avgs {
			cells = append(cells, fmt.Sprintf("%+.1f%%", v*100))
		}
		t.AddRow(cells...)
	}
	avgRow("(spec avg)", res.SpecAvg)
	avgRow("(interactive avg)", res.InteractAvg)
	return t.String()
}

// RenderFigure10 renders the absolute eliminated-miss counts (Figure 10)
// for the paper's best layout (45-10-45 @1, index 1).
func RenderFigure10(res Figure9Result) string {
	t := stats.NewTable("Benchmark", "Suite", "UnifiedMisses", "MissesEliminated(45-10-45@1)")
	for _, r := range res.Rows {
		t.AddRow(r.Name, r.Suite.String(),
			stats.FmtCount(r.UnifiedMisses), fmt.Sprintf("%d", r.Eliminated[1]))
	}
	return t.String()
}

// ---------------------------------------------------------------------------
// Table 2: overhead model

// Table2Row is one overhead formula with its cost at the median trace size.
type Table2Row struct {
	Event         string
	Formula       string
	AtMedianTrace float64
}

// Table2 reproduces the overhead table with the worked example of §6.2.
func Table2(model costmodel.Model) []Table2Row {
	m := model
	return []Table2Row{
		{"Trace Generation", fmt.Sprintf("%.0f * size^%.1f", m.GenCoeff, m.GenExp), m.TraceGen(costmodel.MedianTraceBytes)},
		{"DR Context Switch", fmt.Sprintf("%.0f", m.ContextSwitch), m.ContextSwitch},
		{"Evictions", fmt.Sprintf("%.2f * size + %.0f", m.EvictCoeff, m.EvictConst), m.Evict(costmodel.MedianTraceBytes)},
		{"Promotions", fmt.Sprintf("%.0f * size + %.0f", m.PromoteCoeff, m.PromoteConst), m.Promote(costmodel.MedianTraceBytes)},
		{"Conflict Miss (total)", "2*switch + gen + promote", m.MissCost(costmodel.MedianTraceBytes)},
	}
}

// RenderTable2 renders the table as text.
func RenderTable2(rows []Table2Row) string {
	t := stats.NewTable("Event", "Overhead (instructions)", "At 242-byte trace")
	for _, r := range rows {
		t.AddRow(r.Event, r.Formula, fmt.Sprintf("%.0f", r.AtMedianTrace))
	}
	return t.String()
}

// ---------------------------------------------------------------------------
// Figure 11: instruction-overhead ratio

// Figure11Row is one benchmark's overhead ratio (Equation 3) for the
// 45-10-45 @1 layout; below 100% is a win.
type Figure11Row struct {
	Name  string
	Suite workload.Suite
	Ratio float64
}

// Figure11Result aggregates the figure.
type Figure11Result struct {
	Rows            []Figure11Row
	GeoMean         float64 // paper: 80.7%
	SpecGeoMean     float64
	InteractGeoMean float64
	Worst           string // paper: applu (106.2%)
	Best            string // paper: gzip (51.1%)
}

// Figure11 reproduces the overhead evaluation (§6.2). The per-benchmark
// comparisons run on the suite's pipeline.
func Figure11(s *Suite) (Figure11Result, error) {
	rows, err := perRun(s, func(r *Run) (*Figure11Row, error) {
		capacity := r.MaxTraceBytes() / 2
		if capacity == 0 {
			return nil, nil
		}
		cmp, err := sim.Compare(r.Profile.Name, r.Events, capacity,
			core.Layout451045Threshold1(capacity), s.Model)
		if err != nil {
			return nil, err
		}
		return &Figure11Row{Name: r.Profile.Name, Suite: r.Profile.Suite, Ratio: cmp.OverheadRatio()}, nil
	})
	var res Figure11Result
	if err != nil {
		return res, err
	}
	var ratios, specRatios, interRatios []float64
	best, worst := 10.0, 0.0
	for _, row := range rows {
		if row == nil {
			continue
		}
		ratio := row.Ratio
		res.Rows = append(res.Rows, *row)
		ratios = append(ratios, ratio)
		if row.Suite == workload.SuiteInteractive {
			interRatios = append(interRatios, ratio)
		} else {
			specRatios = append(specRatios, ratio)
		}
		if ratio < best {
			best = ratio
			res.Best = row.Name
		}
		if ratio > worst {
			worst = ratio
			res.Worst = row.Name
		}
	}
	res.GeoMean = stats.GeoMean(ratios)
	res.SpecGeoMean = stats.GeoMean(specRatios)
	res.InteractGeoMean = stats.GeoMean(interRatios)
	return res, nil
}

// RenderFigure11 renders the figure as text.
func RenderFigure11(res Figure11Result) string {
	t := stats.NewTable("Benchmark", "Suite", "OverheadRatio")
	for _, r := range res.Rows {
		t.AddRow(r.Name, r.Suite.String(), fmt.Sprintf("%.1f%%", r.Ratio*100))
	}
	t.AddRow("(spec geomean)", "", fmt.Sprintf("%.1f%%", res.SpecGeoMean*100))
	t.AddRow("(interactive geomean)", "", fmt.Sprintf("%.1f%%", res.InteractGeoMean*100))
	t.AddRow("(geomean)", "", fmt.Sprintf("%.1f%%", res.GeoMean*100))
	return t.String()
}

// ---------------------------------------------------------------------------
// §6.2 cycle impact

// CycleImpactRow estimates the effect of the eliminated misses on overall
// execution cycles, as the paper's closing calculation does (gzip: 2,288
// misses eliminated => 0.07% of cycles; crafty: 292,486 => 8.09%). One
// guest instruction is one cycle; each eliminated miss saves its Table 2
// conflict-miss cost.
type CycleImpactRow struct {
	Name         string
	Suite        workload.Suite
	Eliminated   int64
	ReductionPct float64
}

// CycleImpact derives the estimate from a completed Figure 9 run (using the
// 45-10-45 @1 layout, index 1). Total cycles are the guest's instructions
// plus the unified configuration's management overhead; at compressed
// simulation scales the overhead share — and therefore these percentages —
// is much larger than the paper's full-length runs would show.
func CycleImpact(s *Suite, fig9 Figure9Result) ([]CycleImpactRow, error) {
	jobs := make([]pipeline.Job[*CycleImpactRow], len(fig9.Rows))
	for i, fr := range fig9.Rows {
		fr := fr
		jobs[i] = pipeline.Job[*CycleImpactRow]{
			Name: fr.Name,
			Run: func(context.Context) (*CycleImpactRow, error) {
				r, ok := s.Get(fr.Name)
				if !ok {
					return nil, nil
				}
				capacity := r.MaxTraceBytes() / 2
				u, err := sim.ReplayUnified(r.Profile.Name, r.Events, capacity, s.Model)
				if err != nil {
					return nil, err
				}
				med := stats.Median(sizesOf(r.Summary.TraceSizes))
				saved := float64(fr.Eliminated[1]) * s.Model.MissCost(int(med))
				total := float64(r.Stats.GuestInstrs) + u.Overhead.Total()
				pct := 0.0
				if total > 0 {
					pct = saved / total * 100
				}
				return &CycleImpactRow{
					Name: fr.Name, Suite: fr.Suite,
					Eliminated: fr.Eliminated[1], ReductionPct: pct,
				}, nil
			},
		}
	}
	out, err := pipeline.Map(s.context(), pipeline.Options{Parallel: s.Parallel}, jobs)
	if err != nil {
		return nil, err
	}
	var rows []CycleImpactRow
	for _, row := range out {
		if row != nil {
			rows = append(rows, *row)
		}
	}
	return rows, nil
}

func sizesOf(in []uint32) []float64 {
	out := make([]float64, len(in))
	for i, v := range in {
		out[i] = float64(v)
	}
	return out
}

// RenderCycleImpact renders the estimate as text.
func RenderCycleImpact(rows []CycleImpactRow) string {
	t := stats.NewTable("Benchmark", "Suite", "MissesEliminated", "EstCycleReduction")
	for _, r := range rows {
		t.AddRow(r.Name, r.Suite.String(), fmt.Sprintf("%d", r.Eliminated), fmt.Sprintf("%.2f%%", r.ReductionPct))
	}
	return t.String()
}
