package experiments

import (
	"testing"
)

// TestProductionDayAutoWins is the PR's headline acceptance gate: over the
// standard production day, the autoscaled, load-reactive arm beats every
// static (slots, queue, split) configuration — strictly better service than
// arms at comparable memory, no worse service than arms provisioned above
// it — with every served session verified bit-identical to its offline
// replay and at least one admission resize actually happening.
func TestProductionDayAutoWins(t *testing.T) {
	res, err := ProductionDay(ProductionDayOptions{Verify: true, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("auto arm %s: %d served, %d rejected, %d resizes, p95 %s, %.2f avg slots",
		res.Auto.Arm, res.Auto.Served, res.Auto.Rejected, res.Auto.Resizes,
		res.Auto.P95Latency, res.Auto.AvgSlots)
	if res.Auto.Resizes == 0 {
		t.Error("autoscaled arm never resized admission")
	}
	if res.Auto.VerifyFailed != 0 {
		t.Errorf("%d served sessions diverged from offline replay", res.Auto.VerifyFailed)
	}
	for i, v := range res.Verdicts {
		st := res.Statics[i]
		t.Logf("vs %s (%d rejected, p95 %s, %.2f avg slots): beats=%v — %s",
			v.Arm, st.Rejected, st.P95Latency, st.AvgSlots, v.AutoBeats, v.Reason)
		if st.VerifyFailed != 0 {
			t.Errorf("arm %s: %d verification divergences", st.Arm, st.VerifyFailed)
		}
		if !v.AutoBeats {
			t.Errorf("autoscaled arm does not beat %s: %s", v.Arm, v.Reason)
		}
	}
	if !res.AutoWins {
		t.Error("AutoWins = false")
	}
}

// TestProductionDayDeterministicAcrossParallelism proves arms are truly
// independent: the whole study run sequentially and run 8-wide produces
// byte-identical timeline CSV and NDJSON for every arm.
func TestProductionDayDeterministicAcrossParallelism(t *testing.T) {
	seq, err := ProductionDay(ProductionDayOptions{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := ProductionDay(ProductionDayOptions{Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	all := func(r ProductionDayResult) []*struct {
		arm, csv, nd string
	} {
		var out []*struct{ arm, csv, nd string }
		out = append(out, &struct{ arm, csv, nd string }{r.Auto.Arm, r.Auto.CSV, r.Auto.NDJSON})
		for _, st := range r.Statics {
			out = append(out, &struct{ arm, csv, nd string }{st.Arm, st.CSV, st.NDJSON})
		}
		return out
	}
	a, b := all(seq), all(par)
	if len(a) != len(b) {
		t.Fatalf("arm counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].arm != b[i].arm {
			t.Fatalf("arm %d name differs: %s vs %s", i, a[i].arm, b[i].arm)
		}
		if a[i].csv != b[i].csv {
			t.Errorf("arm %s: timeline CSV differs between -parallel 1 and 8", a[i].arm)
		}
		if a[i].nd != b[i].nd {
			t.Errorf("arm %s: NDJSON stream differs between -parallel 1 and 8", a[i].arm)
		}
	}
}
