package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/sim"
	"repro/internal/stats"
)

// The adaptive-split experiment: the paper settles the nursery/probation/
// persistent proportions offline by sweeping Figure 9's layouts per
// benchmark. The adaptive controller instead starts from the neutral
// 33-33-33 split and re-balances capacity online from windowed eviction
// pressure. The experiment replays each benchmark's log through the three
// Figure 9 static layouts and through the adaptive graph, and checks the
// controller against two bars: it must beat the worst static layout (the
// cost of picking proportions blind) and land within tolerance of the best
// one (the value of tuning offline).

// AdaptiveTolerance is how close (relative) the adaptive miss rate must be
// to the best static layout's to count as matching it.
const AdaptiveTolerance = 0.05

// AdaptiveRow is one benchmark's static-vs-adaptive comparison.
type AdaptiveRow struct {
	Name    string
	Configs []string  // static layout labels, Figure 9 order
	Static  []float64 // miss rate per static layout
	// BestStatic/WorstStatic index Configs/Static.
	BestStatic  int
	WorstStatic int

	Adaptive float64 // adaptive graph's miss rate
	Resizes  uint64  // capacity shifts the controller applied
	Reverted uint64  // shifts it undid

	// BeatsWorst: adaptive < worst static. WithinBest: adaptive is within
	// AdaptiveTolerance (relative) of the best static.
	BeatsWorst bool
	WithinBest bool
}

// AdaptiveVsStatic replays every benchmark's log through the Figure 9 static
// layouts and through an adaptive graph starting from the balanced split.
func AdaptiveVsStatic(s *Suite) ([]AdaptiveRow, error) {
	rows, err := perRun(s, func(r *Run) (*AdaptiveRow, error) {
		capacity := r.MaxTraceBytes() / 2
		if capacity == 0 {
			return nil, nil
		}
		row := &AdaptiveRow{Name: r.Profile.Name, BestStatic: -1, WorstStatic: -1}
		for _, cfg := range figure9Layouts(capacity) {
			g, err := sim.ReplayGenerational(r.Profile.Name, r.Events, cfg, s.Model)
			if err != nil {
				return nil, err
			}
			row.Configs = append(row.Configs, configLabel(cfg))
			row.Static = append(row.Static, g.MissRate())
		}
		for i, m := range row.Static {
			if row.BestStatic < 0 || m < row.Static[row.BestStatic] {
				row.BestStatic = i
			}
			if row.WorstStatic < 0 || m > row.Static[row.WorstStatic] {
				row.WorstStatic = i
			}
		}

		// Build the adaptive manager by hand (rather than via ReplayGraph) so
		// the controller's own counters survive the replay. The controller
		// adapts the capacity split only, so the graph keeps the paper's
		// single-hit promote-on-access gate and starts from the neutral
		// balanced split — the proportions are what it must discover online.
		spec := core.Config{
			TotalCapacity: capacity,
			NurseryFrac:   1.0 / 3, ProbationFrac: 1.0 / 3, PersistentFrac: 1.0 / 3,
			PromoteThreshold: 1, PromoteOnAccess: true,
		}.GraphSpec()
		// Epochs well below the default: the compressed logs the suite
		// collects carry a few thousand to a few hundred thousand accesses,
		// and the controller needs tens of decision points to walk the split.
		spec.Adaptive = &core.AdaptiveConfig{Epoch: 512}
		acc := costmodel.NewAccum(s.Model)
		mgr, err := core.NewGraph(spec, sim.CostObserver(acc))
		if err != nil {
			return nil, err
		}
		a, err := sim.Replay(r.Profile.Name, r.Events, mgr, acc)
		if err != nil {
			return nil, err
		}
		row.Adaptive = a.MissRate()
		if as, ok := mgr.AdaptiveStats(); ok {
			row.Resizes, row.Reverted = as.Resizes, as.Reversals
		}
		best, worst := row.Static[row.BestStatic], row.Static[row.WorstStatic]
		row.BeatsWorst = row.Adaptive < worst || worst == best
		row.WithinBest = row.Adaptive <= best*(1+AdaptiveTolerance) || best == 0
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	var out []AdaptiveRow
	for _, row := range rows {
		if row != nil {
			out = append(out, *row)
		}
	}
	return out, nil
}

// RenderAdaptiveVsStatic renders the comparison as text.
func RenderAdaptiveVsStatic(rows []AdaptiveRow) string {
	if len(rows) == 0 {
		return ""
	}
	header := []string{"Benchmark"}
	header = append(header, rows[0].Configs...)
	header = append(header, "Adaptive", "Resizes", "Verdict")
	t := stats.NewTable(header...)
	for _, r := range rows {
		cells := []string{r.Name}
		for i, m := range r.Static {
			label := fmt.Sprintf("%.3f%%", m*100)
			switch i {
			case r.BestStatic:
				label += " (best)"
			case r.WorstStatic:
				label += " (worst)"
			}
			cells = append(cells, label)
		}
		cells = append(cells,
			fmt.Sprintf("%.3f%%", r.Adaptive*100),
			fmt.Sprintf("%d (-%d)", r.Resizes, r.Reverted),
			adaptiveVerdict(r))
		t.AddRow(cells...)
	}
	return t.String()
}

func adaptiveVerdict(r AdaptiveRow) string {
	switch {
	case r.BeatsWorst && r.WithinBest:
		return "beats worst, within best"
	case r.BeatsWorst:
		return "beats worst"
	case r.WithinBest:
		return "within best"
	default:
		return "worse than worst"
	}
}
