package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/dayload"
	"repro/internal/pipeline"
	"repro/internal/server"
	"repro/internal/server/client"
)

// Production-day A/B: the same declarative day (diurnal two-benchmark mix,
// a 4am deploy, an evening flash crowd) replayed under an autoscaled,
// load-reactive configuration and under a sweep of static configurations —
// static admission limits and static tier splits. Every arm is its own
// server on its own virtual clock over identical input bytes, so arms are
// independent and the comparison is deterministic at any parallelism.
//
// The claim under test is the operational form of the paper's thesis:
// reacting to load beats provisioning for it. The autoscaled arm must end
// the day on the right side of every static arm — strictly better service
// than every arm provisioned at or below its own time-averaged footprint,
// and no worse service than arms provisioned above it (which it beats on
// memory by construction).

// ProductionDayOptions configures the study.
type ProductionDayOptions struct {
	// Seed drives the day's arrival schedule (default 42).
	Seed int64
	// Sessions is the day's total session count (default 40).
	Sessions int
	// TimeScale compresses the declared 24h day (default 720: a 2-minute
	// virtual day).
	TimeScale float64
	// Scale is the workload synthesis scale (default 0.02).
	Scale float64
	// Verify replays every served session offline and counts divergences.
	Verify bool
	// Why attaches the attribution ledger to every arm's sessions: timeline
	// rows carry per-interval miss-cause columns, each day report ends with
	// conserved cause totals, and the study fails if any arm's causes do not
	// conserve against its regenerations.
	Why bool
	// Parallel bounds the arm pool (0 = GOMAXPROCS, 1 = sequential). Arms
	// are independent servers, so parallelism cannot change any result.
	Parallel int
	// Progress, when non-nil, receives one line per finished arm, in arm
	// order.
	Progress func(string)
}

func (o ProductionDayOptions) withDefaults() ProductionDayOptions {
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.Sessions == 0 {
		o.Sessions = 40
	}
	if o.TimeScale == 0 {
		o.TimeScale = 720
	}
	if o.Scale == 0 {
		o.Scale = 0.02
	}
	return o
}

// ProductionDayVerdict is one static arm's comparison against the
// autoscaled arm.
type ProductionDayVerdict struct {
	Arm       string
	AutoBeats bool
	Reason    string
}

// ProductionDayResult is the study's outcome.
type ProductionDayResult struct {
	// Auto is the autoscaled, load-reactive arm's day.
	Auto *dayload.Result
	// Statics are the static arms' days, in sweep order.
	Statics []*dayload.Result
	// Verdicts compare each static arm against Auto.
	Verdicts []ProductionDayVerdict
	// AutoWins reports the headline: the autoscaled arm beat every static
	// arm, resized at least once, and (under Verify) diverged from offline
	// replay zero times.
	AutoWins bool
}

// productionDayArms is the sweep: the autoscaled hero arm first, then
// static admission sizes bracketing it, then static-split variants at the
// middle size. Arms share the Logs map (identical input bytes) and differ
// only in configuration.
func productionDayArms(o ProductionDayOptions, logs map[string][]byte) []dayload.Options {
	auto := dayload.Options{
		Slots: 2,
		Queue: 4,
		Autoscale: &server.AutoscaleConfig{
			MinSlots: 1,
			MaxSlots: 8,
		},
		TickEvery:    5 * time.Minute,
		LoadReactive: true,
		Verify:       o.Verify,
		Attrib:       o.Why,
		Logs:         logs,
	}
	arms := []dayload.Options{auto}
	for _, slots := range []int{1, 2, 4, 8} {
		arms = append(arms, dayload.Options{
			Slots: slots, Queue: 2 * slots, Verify: o.Verify, Attrib: o.Why, Logs: logs,
		})
	}
	for _, layout := range []string{"60-10-30", "30-10-60"} {
		arms = append(arms, dayload.Options{
			Slots: 4, Queue: 8, Layout: layout, Verify: o.Verify, Attrib: o.Why, Logs: logs,
		})
	}
	return arms
}

// ProductionDay runs the study.
func ProductionDay(opts ProductionDayOptions) (ProductionDayResult, error) {
	return ProductionDayContext(context.Background(), opts)
}

// ProductionDayContext is ProductionDay on an explicit context.
func ProductionDayContext(ctx context.Context, opts ProductionDayOptions) (ProductionDayResult, error) {
	opts = opts.withDefaults()
	if err := pipeline.Validate(opts.Parallel); err != nil {
		return ProductionDayResult{}, err
	}
	spec := dayload.StandardDay(opts.Seed, opts.Sessions)
	spec.TimeScale = opts.TimeScale
	spec.Scale = opts.Scale

	// One synthesis pass shared by every arm: identical input bytes.
	logs := make(map[string][]byte)
	for _, b := range []string{"gzip", "word", "solitaire"} {
		data, err := client.SyntheticLog(b, spec.Scale)
		if err != nil {
			return ProductionDayResult{}, err
		}
		logs[b] = data
	}

	arms := productionDayArms(opts, logs)
	jobs := make([]pipeline.Job[*dayload.Result], len(arms))
	for i, arm := range arms {
		arm := arm
		jobs[i] = pipeline.Job[*dayload.Result]{
			Name: dayload.ArmName(arm),
			Run: func(ctx context.Context) (*dayload.Result, error) {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				return dayload.Run(spec, arm)
			},
		}
	}
	popts := pipeline.Options{Parallel: opts.Parallel}
	if opts.Progress != nil {
		popts.Progress = func(name string, index, total int) {
			opts.Progress(fmt.Sprintf("[%d/%d] day arm %s done", index+1, total, name))
		}
	}
	results, err := pipeline.Map(ctx, popts, jobs)
	if err != nil {
		return ProductionDayResult{}, err
	}

	res := ProductionDayResult{Auto: results[0], Statics: results[1:]}
	res.AutoWins = res.Auto.Resizes > 0 && res.Auto.VerifyFailed == 0 && res.Auto.Failures == 0
	if opts.Why && !res.Auto.CausesConserved() {
		res.AutoWins = false
	}
	for _, st := range res.Statics {
		v := compareArms(res.Auto, st)
		res.Verdicts = append(res.Verdicts, v)
		if !v.AutoBeats || st.VerifyFailed > 0 || st.Failures > 0 {
			res.AutoWins = false
		}
		if opts.Why && !st.CausesConserved() {
			res.AutoWins = false
		}
	}
	return res, nil
}

// compareArms decides whether the autoscaled arm beats one static arm. A
// static arm provisioned at or below the auto arm's time-averaged slot
// count must lose on service: strictly more 429s, or equal 429s and no
// better p95. A static arm provisioned above it already loses on memory, so
// it merely must not win on service: no fewer 429s.
func compareArms(auto, st *dayload.Result) ProductionDayVerdict {
	v := ProductionDayVerdict{Arm: st.Arm}
	if st.AvgSlots <= auto.AvgSlots {
		switch {
		case auto.Rejected < st.Rejected:
			v.AutoBeats = true
			v.Reason = fmt.Sprintf("fewer 429s (%d vs %d) at comparable memory (%.2f vs %.2f avg slots)",
				auto.Rejected, st.Rejected, auto.AvgSlots, st.AvgSlots)
		case auto.Rejected == st.Rejected && auto.P95Latency <= st.P95Latency:
			v.AutoBeats = true
			v.Reason = fmt.Sprintf("equal 429s (%d), lower p95 (%s vs %s)",
				auto.Rejected, auto.P95Latency, st.P95Latency)
		default:
			v.Reason = fmt.Sprintf("static wins service: %d vs %d 429s, p95 %s vs %s",
				st.Rejected, auto.Rejected, st.P95Latency, auto.P95Latency)
		}
		return v
	}
	if auto.Rejected <= st.Rejected {
		v.AutoBeats = true
		v.Reason = fmt.Sprintf("equal-or-fewer 429s (%d vs %d) at less memory (%.2f vs %.2f avg slots)",
			auto.Rejected, st.Rejected, auto.AvgSlots, st.AvgSlots)
	} else {
		v.Reason = fmt.Sprintf("static serves better: %d vs %d 429s", st.Rejected, auto.Rejected)
	}
	return v
}
