package experiments

import (
	"bytes"
	"testing"

	"repro/internal/attrib"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/sim"
)

// attribReplay replays one collected run through a unified cache at half its
// unbounded footprint with the attribution ledger attached, and returns the
// ledger's snapshot.
func attribReplay(s *Suite, r *Run) (*attrib.Snapshot, error) {
	capacity := r.MaxTraceBytes() / 2
	if capacity == 0 {
		return nil, nil
	}
	spec := core.UnifiedSpec(capacity, nil)
	spec.Attrib = &attrib.Config{}
	acc := costmodel.NewAccum(s.Model)
	mgr, err := core.NewGraph(spec, sim.CostObserver(acc))
	if err != nil {
		return nil, err
	}
	if _, err := sim.Replay(r.Profile.Name, r.Events, mgr, acc); err != nil {
		return nil, err
	}
	return mgr.Ledger().Snapshot(), nil
}

// TestAttribConservationAllBenchmarks drives the ledger's hard invariant
// across the full 32-benchmark suite at small scale: on every benchmark,
// non-cold cause counts must sum exactly to the replay's regenerations — no
// miss unexplained, none double-explained.
func TestAttribConservationAllBenchmarks(t *testing.T) {
	s, err := Collect(Options{Scale: 0.02}) // nil Benchmarks = all 32
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Runs) != 32 {
		t.Fatalf("collected %d benchmarks, want 32", len(s.Runs))
	}
	snaps, err := perRun(s, func(r *Run) (*attrib.Snapshot, error) {
		return attribReplay(s, r)
	})
	if err != nil {
		t.Fatal(err)
	}
	var totalRegens uint64
	for i, snap := range snaps {
		name := s.Runs[i].Profile.Name
		if snap == nil {
			t.Errorf("%s: zero capacity at this scale; invariant unexercised", name)
			continue
		}
		if !snap.Conserved() {
			t.Errorf("%s: conservation violated: %d cause counts vs %d regenerations",
				name, snap.RegenCauses(), snap.Regens)
		}
		totalRegens += snap.Regens
	}
	// Conservation is only interesting if the constrained replays actually
	// regenerated traces somewhere in the suite.
	if totalRegens == 0 {
		t.Error("no benchmark regenerated a trace; invariant unexercised")
	}
}

// TestAttribReportDeterministicAcrossParallelism extends the pipeline's
// determinism gate to the attribution ledger: the rendered per-module "why"
// report must be byte-identical run over run and at parallel=1 versus
// parallel=8, because cells sort on (module, level, epoch, proc, cause) and
// every replay job owns its own ledger.
func TestAttribReportDeterministicAcrossParallelism(t *testing.T) {
	s, err := Collect(Options{
		Scale:      0.05,
		Benchmarks: []string{"art", "gzip", "solitaire"},
		Parallel:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	reports := func(parallel int) []string {
		t.Helper()
		s.Parallel = parallel
		out, err := perRun(s, func(r *Run) (string, error) {
			snap, err := attribReplay(s, r)
			if err != nil || snap == nil {
				return "", err
			}
			var buf bytes.Buffer
			snap.WriteReport(&buf, 8)
			return buf.String(), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	seq := reports(1)
	again := reports(1)
	par := reports(8)
	for i := range seq {
		name := s.Runs[i].Profile.Name
		if seq[i] == "" {
			t.Errorf("%s: empty why report", name)
		}
		if seq[i] != again[i] {
			t.Errorf("%s: why report differs across repeated sequential runs", name)
		}
		if seq[i] != par[i] {
			t.Errorf("%s: why report differs between parallel=1 and parallel=8:\n--- seq ---\n%s\n--- par ---\n%s",
				name, seq[i], par[i])
		}
	}
}
