package experiments

import (
	"fmt"
	"strings"

	"repro/internal/attrib"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
)

// The policy-selection experiment: the paper fixes the pseudo-circular local
// policy after comparing the §4 alternatives offline. The online policy
// selector instead shadow-races the candidate zoo on the live cache and
// switches the installed policy at deterministic epoch boundaries. The
// experiment replays each benchmark's log through a unified cache pinned to
// each static candidate and through the same cache under selection, and
// checks the selector against the same two bars as the adaptive-split
// controller: it must beat the worst static policy (the cost of picking a
// policy blind) and land within tolerance of the best one (the value of
// tuning offline).

// PolicySelectTolerance is how close (relative) the selector's miss rate
// must be to the best static policy's to count as matching it.
const PolicySelectTolerance = 0.05

// PolicySelectRow is one benchmark's static-vs-selector comparison.
type PolicySelectRow struct {
	Name    string
	Configs []string  // static policy specs, candidate order
	Static  []float64 // miss rate per static policy
	// BestStatic/WorstStatic index Configs/Static.
	BestStatic  int
	WorstStatic int

	Selector float64 // selector graph's miss rate
	Switches uint64  // live-policy swaps the selector applied
	Reverted uint64  // swaps that undid the previous one
	Final    string  // live policy when the replay ended
	// Causes is the selector run's per-cause miss breakdown (indexed by
	// obs.Reason), from the attribution ledger riding the selector graph —
	// the switch report's "what the selector was up against".
	Causes [obs.NumReasons]uint64

	// BeatsWorst: selector < worst static. WithinBest: selector is within
	// PolicySelectTolerance (relative) of the best static.
	BeatsWorst bool
	WithinBest bool
}

// PolicySelection replays every benchmark's log through a unified cache
// pinned to each candidate policy and through the same cache under online
// selection.
func PolicySelection(s *Suite) ([]PolicySelectRow, error) {
	candidates := core.DefaultSelectorCandidates
	rows, err := perRun(s, func(r *Run) (*PolicySelectRow, error) {
		capacity := r.MaxTraceBytes() / 2
		if capacity == 0 {
			return nil, nil
		}
		row := &PolicySelectRow{Name: r.Profile.Name, BestStatic: -1, WorstStatic: -1}
		for _, cand := range candidates {
			spec := core.UnifiedSpec(capacity, nil)
			spec.Tiers[0].Policy = cand
			g, err := sim.ReplayGraph(r.Profile.Name, r.Events, spec, s.Model)
			if err != nil {
				return nil, err
			}
			row.Configs = append(row.Configs, cand)
			row.Static = append(row.Static, g.MissRate())
		}
		for i, m := range row.Static {
			if row.BestStatic < 0 || m < row.Static[row.BestStatic] {
				row.BestStatic = i
			}
			if row.WorstStatic < 0 || m > row.Static[row.WorstStatic] {
				row.WorstStatic = i
			}
		}

		// Build the selector manager by hand (rather than via ReplayGraph) so
		// its counters survive the replay. Epochs well below the default: the
		// compressed logs the suite collects carry a few thousand to a few
		// hundred thousand accesses, and the selector needs tens of decision
		// windows to race the zoo.
		spec := core.UnifiedSpec(capacity, nil)
		spec.Tiers[0].Policy = "auto"
		spec.Selector = &core.SelectorConfig{Epoch: 256, Candidates: candidates}
		// The attribution ledger rides the selector graph so the switch
		// report can say what kind of misses the selector was fighting. It
		// only observes: miss rates and switch counts are unchanged.
		spec.Attrib = &attrib.Config{}
		acc := costmodel.NewAccum(s.Model)
		mgr, err := core.NewGraph(spec, sim.CostObserver(acc))
		if err != nil {
			return nil, err
		}
		a, err := sim.Replay(r.Profile.Name, r.Events, mgr, acc)
		if err != nil {
			return nil, err
		}
		row.Selector = a.MissRate()
		if ss, ok := mgr.SelectorStats(); ok {
			row.Switches, row.Reverted = ss.Switches, ss.Reversals
			row.Causes = ss.MissCauses
		}
		row.Final = strings.Join(mgr.LivePolicies(), "-")
		best, worst := row.Static[row.BestStatic], row.Static[row.WorstStatic]
		row.BeatsWorst = row.Selector < worst || worst == best
		row.WithinBest = row.Selector <= best*(1+PolicySelectTolerance) || best == 0
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	var out []PolicySelectRow
	for _, row := range rows {
		if row != nil {
			out = append(out, *row)
		}
	}
	return out, nil
}

// RenderPolicySelection renders the comparison as text.
func RenderPolicySelection(rows []PolicySelectRow) string {
	if len(rows) == 0 {
		return ""
	}
	header := []string{"Benchmark"}
	header = append(header, rows[0].Configs...)
	header = append(header, "Selector", "Switches", "Final", "Verdict", "Top cause")
	t := stats.NewTable(header...)
	for _, r := range rows {
		cells := []string{r.Name}
		for i, m := range r.Static {
			label := fmt.Sprintf("%.3f%%", m*100)
			switch i {
			case r.BestStatic:
				label += " (best)"
			case r.WorstStatic:
				label += " (worst)"
			}
			cells = append(cells, label)
		}
		cells = append(cells,
			fmt.Sprintf("%.3f%%", r.Selector*100),
			fmt.Sprintf("%d (-%d)", r.Switches, r.Reverted),
			r.Final,
			policySelectVerdict(r),
			TopCauseLabel(r.Causes))
		t.AddRow(cells...)
	}
	return t.String()
}

// TopCauseLabel names the dominant regeneration cause in a per-cause miss
// breakdown, with its share of all regenerations: "capacity 62%". Cold is a
// compile, not a regeneration, so it never wins; "-" when nothing
// regenerated.
func TopCauseLabel(causes [obs.NumReasons]uint64) string {
	var total uint64
	top, topN := obs.ReasonNone, uint64(0)
	for c := obs.Reason(1); int(c) < obs.NumReasons; c++ {
		if c == obs.ReasonCold {
			continue
		}
		total += causes[c]
		if causes[c] > topN {
			top, topN = c, causes[c]
		}
	}
	if total == 0 {
		return "-"
	}
	return fmt.Sprintf("%s %.0f%%", top.String(), float64(topN)/float64(total)*100)
}

func policySelectVerdict(r PolicySelectRow) string {
	switch {
	case r.BeatsWorst && r.WithinBest:
		return "beats worst, within best"
	case r.BeatsWorst:
		return "beats worst"
	case r.WithinBest:
		return "within best"
	default:
		return "worse than worst"
	}
}
