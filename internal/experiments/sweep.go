package experiments

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/pipeline"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/stats"
)

// The §6.1 configuration-space sweep: the paper swept generational cache
// proportions and promotion thresholds, observing (a) no universally best
// unbalanced nursery/persistent sizing and (b) an undeniable link between
// probation size and promotion threshold — small probation caches need low
// thresholds or long-lived traces are evicted before qualifying.

// SweepPoint is one configuration's average miss-rate reduction.
type SweepPoint struct {
	Nursery, Probation, Persistent float64
	Threshold                      uint64
	PromoteOnAccess                bool
	AvgReduction                   float64 // unweighted mean over benchmarks
}

// Label renders the configuration compactly.
func (p SweepPoint) Label() string {
	return fmt.Sprintf("%.0f-%.0f-%.0f@%d", p.Nursery*100, p.Probation*100, p.Persistent*100, p.Threshold)
}

// SweepResult holds the grid.
type SweepResult struct {
	Points []SweepPoint
	Best   SweepPoint
}

// sweepGrid returns the explored layouts: balanced and unbalanced
// proportions crossed with promotion thresholds.
func sweepGrid() []core.Config {
	type shape struct{ n, p, s float64 }
	shapes := []shape{
		{1.0 / 3, 1.0 / 3, 1.0 / 3},
		{0.45, 0.10, 0.45},
		{0.10, 0.45, 0.45},
		{0.45, 0.45, 0.10},
		{0.25, 0.50, 0.25},
		{0.60, 0.10, 0.30},
		{0.30, 0.10, 0.60},
	}
	thresholds := []uint64{1, 5, 10, 50}
	var out []core.Config
	for _, sh := range shapes {
		for _, th := range thresholds {
			out = append(out, core.Config{
				NurseryFrac:      sh.n,
				ProbationFrac:    sh.p,
				PersistentFrac:   sh.s,
				PromoteThreshold: th,
				PromoteOnAccess:  th == 1,
			})
		}
	}
	return out
}

// Sweep replays every benchmark's log through the configuration grid and
// averages the miss-rate reductions. Each benchmark's 29 replays are one
// pipeline job; sums aggregate in benchmark order.
func Sweep(s *Suite) (SweepResult, error) {
	grid := sweepGrid()
	perBench, err := perRun(s, func(r *Run) ([]float64, error) {
		capacity := r.MaxTraceBytes() / 2
		if capacity == 0 {
			return nil, nil
		}
		u, err := sim.ReplayUnified(r.Profile.Name, r.Events, capacity, s.Model)
		if err != nil {
			return nil, err
		}
		if u.MissRate() == 0 {
			return nil, nil
		}
		reds := make([]float64, len(grid))
		for i, cfg := range grid {
			cfg.TotalCapacity = capacity
			g, err := sim.ReplayGenerational(r.Profile.Name, r.Events, cfg, s.Model)
			if err != nil {
				return nil, err
			}
			reds[i] = 1 - g.MissRate()/u.MissRate()
		}
		return reds, nil
	})
	if err != nil {
		return SweepResult{}, err
	}
	sums := make([]float64, len(grid))
	n := 0
	for _, reds := range perBench {
		if reds == nil {
			continue
		}
		n++
		for i, v := range reds {
			sums[i] += v
		}
	}
	var res SweepResult
	for i, cfg := range grid {
		avg := 0.0
		if n > 0 {
			avg = sums[i] / float64(n)
		}
		pt := SweepPoint{
			Nursery: cfg.NurseryFrac, Probation: cfg.ProbationFrac, Persistent: cfg.PersistentFrac,
			Threshold: cfg.PromoteThreshold, PromoteOnAccess: cfg.PromoteOnAccess,
			AvgReduction: avg,
		}
		res.Points = append(res.Points, pt)
		if i == 0 || pt.AvgReduction > res.Best.AvgReduction {
			res.Best = pt
		}
	}
	return res, nil
}

// RenderSweep renders the sweep grid as text.
func RenderSweep(res SweepResult) string {
	t := stats.NewTable("Layout", "Threshold", "AvgMissRateReduction")
	for _, p := range res.Points {
		t.AddRow(fmt.Sprintf("%.0f-%.0f-%.0f", p.Nursery*100, p.Probation*100, p.Persistent*100),
			fmt.Sprintf("%d", p.Threshold), fmt.Sprintf("%+.1f%%", p.AvgReduction*100))
	}
	t.AddRow("(best)", res.Best.Label(), fmt.Sprintf("%+.1f%%", res.Best.AvgReduction*100))
	return t.String()
}

// ProbationLink quantifies the paper's §6.1 observation: for each probation
// size, the best threshold; small probation caches should prefer small
// thresholds.
type ProbationLink struct {
	ProbationFrac  float64
	BestThreshold  uint64
	AvgAtBest      float64
	AvgAtWorst     float64
	WorstThreshold uint64
}

// ProbationThresholdLink derives the interaction from a completed sweep.
// Links are returned in ascending probation-fraction order so the rendered
// report is deterministic (map iteration order is not).
func ProbationThresholdLink(res SweepResult) []ProbationLink {
	byProb := map[float64][]SweepPoint{}
	var fracs []float64
	for _, p := range res.Points {
		if _, seen := byProb[p.Probation]; !seen {
			fracs = append(fracs, p.Probation)
		}
		byProb[p.Probation] = append(byProb[p.Probation], p)
	}
	sort.Float64s(fracs)
	var out []ProbationLink
	for _, frac := range fracs {
		link := ProbationLink{ProbationFrac: frac}
		for i, p := range byProb[frac] {
			if i == 0 || p.AvgReduction > link.AvgAtBest {
				link.AvgAtBest = p.AvgReduction
				link.BestThreshold = p.Threshold
			}
			if i == 0 || p.AvgReduction < link.AvgAtWorst {
				link.AvgAtWorst = p.AvgReduction
				link.WorstThreshold = p.Threshold
			}
		}
		out = append(out, link)
	}
	return out
}

// ---------------------------------------------------------------------------
// Ablations (design choices DESIGN.md calls out)

// AblationRow compares one design variant against the paper's 45-10-45@1
// design on average miss-rate reduction over the unified baseline.
type AblationRow struct {
	Name         string
	AvgReduction float64
}

// Ablations evaluates:
//   - paper: the 45-10-45 @1 design;
//   - no-probation: nursery victims promote straight to the persistent
//     cache (threshold 0 through a vestigial probation buffer);
//   - lru-local: the paper's layout but with LRU as every cache's local
//     policy (left as future work in §5);
//   - flush-unified: a unified cache that flushes when full (Dynamo-style
//     management), as a second baseline.
func Ablations(s *Suite) ([]AblationRow, error) {
	type variant struct {
		name string
		run  func(r *Run, capacity uint64, u sim.Result) (float64, error)
	}
	genRed := func(cfg core.Config, r *Run, u sim.Result) (float64, error) {
		g, err := sim.ReplayGenerational(r.Profile.Name, r.Events, cfg, s.Model)
		if err != nil {
			return 0, err
		}
		if u.MissRate() == 0 {
			return 0, nil
		}
		return 1 - g.MissRate()/u.MissRate(), nil
	}
	variants := []variant{
		{"45-10-45@1 (paper)", func(r *Run, c uint64, u sim.Result) (float64, error) {
			return genRed(core.Layout451045Threshold1(c), r, u)
		}},
		{"no-probation", func(r *Run, c uint64, u sim.Result) (float64, error) {
			cfg := core.Config{
				TotalCapacity: c,
				NurseryFrac:   0.47, ProbationFrac: 0.03, PersistentFrac: 0.50,
				PromoteThreshold: 0, // every probation victim promotes
			}
			return genRed(cfg, r, u)
		}},
		{"lru-local", func(r *Run, c uint64, u sim.Result) (float64, error) {
			cfg := core.Layout451045Threshold1(c)
			cfg.Local = func(core.Level) policy.Local { return policy.NewLRU() }
			return genRed(cfg, r, u)
		}},
		{"flush-unified", func(r *Run, c uint64, u sim.Result) (float64, error) {
			acc := costmodel.NewAccum(s.Model)
			mgr := core.NewUnified(c, &policy.FlushWhenFull{}, sim.CostObserver(acc))
			g, err := sim.Replay(r.Profile.Name, r.Events, mgr, acc)
			if err != nil {
				return 0, err
			}
			if u.MissRate() == 0 {
				return 0, nil
			}
			return 1 - g.MissRate()/u.MissRate(), nil
		}},
		{"holefill-unified", func(r *Run, c uint64, u sim.Result) (float64, error) {
			// The §4.3 road not taken: fill program-forced holes before
			// evicting at the cursor.
			acc := costmodel.NewAccum(s.Model)
			mgr := core.NewUnified(c, &policy.CircularFirstFit{}, sim.CostObserver(acc))
			g, err := sim.Replay(r.Profile.Name, r.Events, mgr, acc)
			if err != nil {
				return 0, err
			}
			if u.MissRate() == 0 {
				return 0, nil
			}
			return 1 - g.MissRate()/u.MissRate(), nil
		}},
	}

	perBench, err := perRun(s, func(r *Run) ([]float64, error) {
		capacity := r.MaxTraceBytes() / 2
		if capacity == 0 {
			return nil, nil
		}
		u, err := sim.ReplayUnified(r.Profile.Name, r.Events, capacity, s.Model)
		if err != nil {
			return nil, err
		}
		if u.MissRate() == 0 {
			return nil, nil
		}
		reds := make([]float64, len(variants))
		for i, v := range variants {
			red, err := v.run(r, capacity, u)
			if err != nil {
				return nil, err
			}
			reds[i] = red
		}
		return reds, nil
	})
	if err != nil {
		return nil, err
	}
	sums := make([]float64, len(variants))
	n := 0
	for _, reds := range perBench {
		if reds == nil {
			continue
		}
		n++
		for i, v := range reds {
			sums[i] += v
		}
	}
	var out []AblationRow
	for i, v := range variants {
		avg := 0.0
		if n > 0 {
			avg = sums[i] / float64(n)
		}
		out = append(out, AblationRow{Name: v.name, AvgReduction: avg})
	}
	return out, nil
}

// RenderAblations renders the ablation table as text.
func RenderAblations(rows []AblationRow) string {
	t := stats.NewTable("Variant", "AvgMissRateReduction")
	for _, r := range rows {
		t.AddRow(r.Name, fmt.Sprintf("%+.1f%%", r.AvgReduction*100))
	}
	return t.String()
}

// ---------------------------------------------------------------------------
// Capacity sensitivity

// CapacityPoint is one cache-size point of the capacity sweep: average miss
// rates for the unified baseline and the 45-10-45 @1 generational layout
// when total capacity is CapFrac of each benchmark's unbounded footprint.
type CapacityPoint struct {
	CapFrac         float64
	UnifiedMissRate float64
	GenMissRate     float64
	AvgReduction    float64
}

// CapacitySweep maps out how the generational advantage depends on cache
// pressure. The paper evaluates only CapFrac = 0.5; the sweep shows the
// advantage shrinking as the cache approaches the unbounded footprint (no
// pressure, nothing to manage) and at very small caches (nothing fits
// anywhere).
func CapacitySweep(s *Suite, fracs []float64) ([]CapacityPoint, error) {
	if len(fracs) == 0 {
		fracs = []float64{0.25, 0.375, 0.5, 0.75, 0.9}
	}
	// Flatten the frac x benchmark matrix into one job list so the worker
	// pool stays busy across point boundaries; aggregation below walks the
	// results in (frac, benchmark) order.
	type cell struct {
		u, g, red float64
		ok        bool
	}
	var jobs []pipeline.Job[cell]
	for _, frac := range fracs {
		for _, r := range s.Runs {
			frac, r := frac, r
			jobs = append(jobs, pipeline.Job[cell]{
				Name: fmt.Sprintf("%s@%.0f%%", r.Profile.Name, frac*100),
				Run: func(context.Context) (cell, error) {
					capacity := uint64(float64(r.MaxTraceBytes()) * frac)
					if capacity == 0 {
						return cell{}, nil
					}
					u, err := sim.ReplayUnified(r.Profile.Name, r.Events, capacity, s.Model)
					if err != nil {
						return cell{}, err
					}
					g, err := sim.ReplayGenerational(r.Profile.Name, r.Events, core.Layout451045Threshold1(capacity), s.Model)
					if err != nil {
						return cell{}, err
					}
					c := cell{u: u.MissRate(), g: g.MissRate(), ok: true}
					if c.u > 0 {
						c.red = 1 - c.g/c.u
					}
					return c, nil
				},
			})
		}
	}
	cells, err := pipeline.Map(s.context(), pipeline.Options{Parallel: s.Parallel}, jobs)
	if err != nil {
		return nil, err
	}
	var out []CapacityPoint
	for fi, frac := range fracs {
		var uSum, gSum, redSum float64
		n := 0
		for ri := range s.Runs {
			c := cells[fi*len(s.Runs)+ri]
			if !c.ok {
				continue
			}
			uSum += c.u
			gSum += c.g
			redSum += c.red
			n++
		}
		if n == 0 {
			continue
		}
		out = append(out, CapacityPoint{
			CapFrac:         frac,
			UnifiedMissRate: uSum / float64(n),
			GenMissRate:     gSum / float64(n),
			AvgReduction:    redSum / float64(n),
		})
	}
	return out, nil
}

// RenderCapacitySweep renders the sweep as text.
func RenderCapacitySweep(points []CapacityPoint) string {
	t := stats.NewTable("Capacity", "UnifiedMissRate", "GenMissRate", "AvgReduction")
	for _, p := range points {
		t.AddRow(fmt.Sprintf("%.0f%% of maxCache", p.CapFrac*100),
			fmt.Sprintf("%.3f%%", p.UnifiedMissRate*100),
			fmt.Sprintf("%.3f%%", p.GenMissRate*100),
			fmt.Sprintf("%+.1f%%", p.AvgReduction*100))
	}
	return t.String()
}
