// Package experiments regenerates every table and figure of the paper's
// evaluation. Collect performs the expensive part once per benchmark — an
// unbounded-cache engine run that produces the cache event log, exactly the
// paper's methodology (§6) — and the per-figure functions derive their rows
// from the collected artifacts, replaying logs through cache configurations
// where needed.
package experiments

import (
	"bytes"
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/dbt"
	"repro/internal/pipeline"
	"repro/internal/stats"
	"repro/internal/tracelog"
	"repro/internal/workload"
)

// Options configures a collection pass.
type Options struct {
	// Scale shrinks every benchmark's code-size target; results that scale
	// with code size are rescaled by 1/Scale when reported. Default 0.125.
	Scale float64
	// Benchmarks restricts the set (nil = all 32).
	Benchmarks []string
	// SeedOffset shifts every profile's RNG seed, for checking that results
	// are not artifacts of the particular calibrated seeds.
	SeedOffset int64
	// Model is the overhead model (zero value = Table 2 defaults).
	Model *costmodel.Model
	// Parallel bounds the worker pool for collection and for every figure
	// pipeline derived from the collected suite. 0 means GOMAXPROCS; 1
	// preserves exact sequential behaviour. Negative values are rejected.
	Parallel int
	// SlowDispatch forces every collection engine onto the original
	// map-based dispatch path. The fast dense-index path must produce
	// bit-for-bit identical statistics, so this exists only for the
	// equivalence tests that prove it.
	SlowDispatch bool
	// Progress, when non-nil, receives one line per completed benchmark,
	// always in benchmark order.
	Progress func(string)
}

func (o Options) scale() float64 {
	if o.Scale <= 0 {
		return 0.125
	}
	return o.Scale
}

func (o Options) model() costmodel.Model {
	if o.Model != nil {
		return *o.Model
	}
	return costmodel.DefaultModel
}

// ModelOrDefault returns the configured cost model, defaulting to Table 2.
func (o Options) ModelOrDefault() costmodel.Model { return o.model() }

// Run is one benchmark's unbounded-run artifacts.
type Run struct {
	Profile   workload.Profile // scaled profile actually executed
	Unscaled  workload.Profile
	Stats     dbt.RunStats
	Events    []tracelog.Event
	Summary   tracelog.Summary
	Lifetimes *stats.Lifetimes
	Footprint uint64
}

// MaxTraceBytes is the peak live trace-cache size of the unbounded run —
// the paper's maxCache, from which every simulated capacity derives.
func (r *Run) MaxTraceBytes() uint64 { return r.Summary.MaxLiveBytes }

// Suite holds every benchmark's artifacts for one collection pass.
type Suite struct {
	Scale float64
	Model costmodel.Model
	// Parallel bounds the worker pool of every figure pipeline derived from
	// this suite (0 = GOMAXPROCS, 1 = sequential). Because every replay job
	// owns its own manager and accumulator, figure results are identical at
	// every parallelism level.
	Parallel int
	Runs     []*Run
	byName   map[string]*Run

	// ctx is the collection context; figure pipelines inherit it so a
	// CLI-level timeout covers the derived replays too. Cancellation is
	// observed between jobs, not inside a replay.
	ctx context.Context
}

func (s *Suite) context() context.Context {
	if s.ctx != nil {
		return s.ctx
	}
	return context.Background()
}

// perRun executes fn once per collected benchmark through the experiment
// pipeline, returning results in run order. It is the shared scaffolding for
// every per-figure replay matrix.
func perRun[T any](s *Suite, fn func(r *Run) (T, error)) ([]T, error) {
	jobs := make([]pipeline.Job[T], len(s.Runs))
	for i, r := range s.Runs {
		r := r
		jobs[i] = pipeline.Job[T]{
			Name: r.Profile.Name,
			Run:  func(context.Context) (T, error) { return fn(r) },
		}
	}
	return pipeline.Map(s.context(), pipeline.Options{Parallel: s.Parallel}, jobs)
}

// Get returns a benchmark's run.
func (s *Suite) Get(name string) (*Run, bool) {
	r, ok := s.byName[name]
	return r, ok
}

// SpecRuns returns the SPEC2000 runs in profile order.
func (s *Suite) SpecRuns() []*Run { return s.bySuite(true) }

// InteractiveRuns returns the interactive runs in profile order.
func (s *Suite) InteractiveRuns() []*Run { return s.bySuite(false) }

func (s *Suite) bySuite(spec bool) []*Run {
	var out []*Run
	for _, r := range s.Runs {
		isSpec := r.Profile.Suite == workload.SuiteSpecInt || r.Profile.Suite == workload.SuiteSpecFP
		if isSpec == spec {
			out = append(out, r)
		}
	}
	return out
}

// Collect synthesizes and runs every requested benchmark under an unbounded
// trace cache, capturing the event log, lifetimes, and engine statistics.
func Collect(opts Options) (*Suite, error) {
	return CollectContext(context.Background(), opts)
}

// CollectContext is Collect bounded by a context: collection jobs (one per
// benchmark, each with its own seeded RNG and engine) run on the pipeline's
// worker pool, and figure pipelines derived from the suite inherit ctx.
func CollectContext(ctx context.Context, opts Options) (*Suite, error) {
	if err := pipeline.Validate(opts.Parallel); err != nil {
		return nil, err
	}
	scale := opts.scale()
	suite := &Suite{
		Scale: scale, Model: opts.model(), Parallel: opts.Parallel,
		byName: make(map[string]*Run), ctx: ctx,
	}

	profiles := workload.All()
	if opts.Benchmarks != nil {
		var sel []workload.Profile
		for _, name := range opts.Benchmarks {
			p, ok := workload.ByName(name)
			if !ok {
				return nil, fmt.Errorf("experiments: unknown benchmark %q", name)
			}
			sel = append(sel, p)
		}
		profiles = sel
	}

	done := make([]*Run, len(profiles)) // each job writes only its own index
	jobs := make([]pipeline.Job[*Run], len(profiles))
	for i, p := range profiles {
		p.Seed += opts.SeedOffset
		i, p := i, p
		jobs[i] = pipeline.Job[*Run]{
			Name: p.Name,
			Run: func(context.Context) (*Run, error) {
				run, err := collectOne(p, scale, suite.Model, opts.SlowDispatch)
				if err == nil {
					done[i] = run
				}
				return run, err
			},
		}
	}
	popts := pipeline.Options{Parallel: opts.Parallel}
	if opts.Progress != nil {
		// The pipeline reports completions in benchmark order, so progress
		// output is identical at every parallelism level.
		progress := opts.Progress
		popts.Progress = func(_ string, index, _ int) {
			run := done[index]
			progress(fmt.Sprintf("%-12s %9d events, %7s traces",
				run.Profile.Name, len(run.Events), stats.FmtBytes(run.Stats.TraceBytes)))
		}
	}
	runs, err := pipeline.Map(ctx, popts, jobs)
	if err != nil {
		return nil, err
	}
	for _, run := range runs {
		suite.Runs = append(suite.Runs, run)
		suite.byName[run.Profile.Name] = run
	}
	return suite, nil
}

func collectOne(p workload.Profile, scale float64, model costmodel.Model, slow bool) (*Run, error) {
	scaled := p.Scaled(scale)
	bench, err := workload.Synthesize(scaled)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	w, err := tracelog.NewWriter(&buf, tracelog.Header{
		Benchmark:      p.Name,
		DurationMicros: p.DurationMicros(),
	})
	if err != nil {
		return nil, err
	}
	lt := stats.NewLifetimes()
	mgr := core.NewUnified(1<<40, nil, nil)
	eng, err := dbt.New(bench.Image, dbt.Config{
		Manager:      mgr,
		Model:        &model,
		Log:          w,
		Lifetimes:    lt,
		SlowDispatch: slow,
	})
	if err != nil {
		return nil, err
	}
	if err := eng.Run(bench.NewDriver(), 0); err != nil {
		return nil, fmt.Errorf("experiments: running %s: %w", p.Name, err)
	}
	h, events, err := tracelog.ReadAll(&buf)
	if err != nil {
		return nil, fmt.Errorf("experiments: decoding %s log: %w", p.Name, err)
	}
	return &Run{
		Profile:   scaled,
		Unscaled:  p,
		Stats:     eng.Stats(),
		Events:    events,
		Summary:   tracelog.Summarize(h, events),
		Lifetimes: lt,
		Footprint: bench.Image.Footprint(),
	}, nil
}

// rescale converts a size measured at the suite's scale back to full-size
// units for comparison against the paper's absolute numbers.
func (s *Suite) rescale(v float64) float64 { return v / s.Scale }
