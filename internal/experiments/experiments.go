// Package experiments regenerates every table and figure of the paper's
// evaluation. Collect performs the expensive part once per benchmark — an
// unbounded-cache engine run that produces the cache event log, exactly the
// paper's methodology (§6) — and the per-figure functions derive their rows
// from the collected artifacts, replaying logs through cache configurations
// where needed.
package experiments

import (
	"bytes"
	"fmt"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/dbt"
	"repro/internal/stats"
	"repro/internal/tracelog"
	"repro/internal/workload"
)

// Options configures a collection pass.
type Options struct {
	// Scale shrinks every benchmark's code-size target; results that scale
	// with code size are rescaled by 1/Scale when reported. Default 0.125.
	Scale float64
	// Benchmarks restricts the set (nil = all 32).
	Benchmarks []string
	// SeedOffset shifts every profile's RNG seed, for checking that results
	// are not artifacts of the particular calibrated seeds.
	SeedOffset int64
	// Model is the overhead model (zero value = Table 2 defaults).
	Model *costmodel.Model
	// Progress, when non-nil, receives one line per completed benchmark.
	Progress func(string)
}

func (o Options) scale() float64 {
	if o.Scale <= 0 {
		return 0.125
	}
	return o.Scale
}

func (o Options) model() costmodel.Model {
	if o.Model != nil {
		return *o.Model
	}
	return costmodel.DefaultModel
}

// ModelOrDefault returns the configured cost model, defaulting to Table 2.
func (o Options) ModelOrDefault() costmodel.Model { return o.model() }

// Run is one benchmark's unbounded-run artifacts.
type Run struct {
	Profile   workload.Profile // scaled profile actually executed
	Unscaled  workload.Profile
	Stats     dbt.RunStats
	Events    []tracelog.Event
	Summary   tracelog.Summary
	Lifetimes *stats.Lifetimes
	Footprint uint64
}

// MaxTraceBytes is the peak live trace-cache size of the unbounded run —
// the paper's maxCache, from which every simulated capacity derives.
func (r *Run) MaxTraceBytes() uint64 { return r.Summary.MaxLiveBytes }

// Suite holds every benchmark's artifacts for one collection pass.
type Suite struct {
	Scale  float64
	Model  costmodel.Model
	Runs   []*Run
	byName map[string]*Run
}

// Get returns a benchmark's run.
func (s *Suite) Get(name string) (*Run, bool) {
	r, ok := s.byName[name]
	return r, ok
}

// SpecRuns returns the SPEC2000 runs in profile order.
func (s *Suite) SpecRuns() []*Run { return s.bySuite(true) }

// InteractiveRuns returns the interactive runs in profile order.
func (s *Suite) InteractiveRuns() []*Run { return s.bySuite(false) }

func (s *Suite) bySuite(spec bool) []*Run {
	var out []*Run
	for _, r := range s.Runs {
		isSpec := r.Profile.Suite == workload.SuiteSpecInt || r.Profile.Suite == workload.SuiteSpecFP
		if isSpec == spec {
			out = append(out, r)
		}
	}
	return out
}

// Collect synthesizes and runs every requested benchmark under an unbounded
// trace cache, capturing the event log, lifetimes, and engine statistics.
func Collect(opts Options) (*Suite, error) {
	scale := opts.scale()
	suite := &Suite{Scale: scale, Model: opts.model(), byName: make(map[string]*Run)}

	profiles := workload.All()
	if opts.Benchmarks != nil {
		var sel []workload.Profile
		for _, name := range opts.Benchmarks {
			p, ok := workload.ByName(name)
			if !ok {
				return nil, fmt.Errorf("experiments: unknown benchmark %q", name)
			}
			sel = append(sel, p)
		}
		profiles = sel
	}

	for _, p := range profiles {
		p.Seed += opts.SeedOffset
		run, err := collectOne(p, scale, suite.Model)
		if err != nil {
			return nil, err
		}
		suite.Runs = append(suite.Runs, run)
		suite.byName[p.Name] = run
		if opts.Progress != nil {
			opts.Progress(fmt.Sprintf("%-12s %9d events, %7s traces",
				p.Name, len(run.Events), stats.FmtBytes(run.Stats.TraceBytes)))
		}
	}
	return suite, nil
}

func collectOne(p workload.Profile, scale float64, model costmodel.Model) (*Run, error) {
	scaled := p.Scaled(scale)
	bench, err := workload.Synthesize(scaled)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	w, err := tracelog.NewWriter(&buf, tracelog.Header{
		Benchmark:      p.Name,
		DurationMicros: p.DurationMicros(),
	})
	if err != nil {
		return nil, err
	}
	lt := stats.NewLifetimes()
	mgr := core.NewUnified(1<<40, nil, core.Hooks{})
	eng, err := dbt.New(bench.Image, dbt.Config{
		Manager:   mgr,
		Model:     &model,
		Log:       w,
		Lifetimes: lt,
	})
	if err != nil {
		return nil, err
	}
	if err := eng.Run(bench.NewDriver(), 0); err != nil {
		return nil, fmt.Errorf("experiments: running %s: %w", p.Name, err)
	}
	h, events, err := tracelog.ReadAll(&buf)
	if err != nil {
		return nil, fmt.Errorf("experiments: decoding %s log: %w", p.Name, err)
	}
	return &Run{
		Profile:   scaled,
		Unscaled:  p,
		Stats:     eng.Stats(),
		Events:    events,
		Summary:   tracelog.Summarize(h, events),
		Lifetimes: lt,
		Footprint: bench.Image.Footprint(),
	}, nil
}

// rescale converts a size measured at the suite's scale back to full-size
// units for comparison against the paper's absolute numbers.
func (s *Suite) rescale(v float64) float64 { return v / s.Scale }
