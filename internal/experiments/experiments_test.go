package experiments

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

// testSuite collects a small, fast subset once for all experiment tests.
var cachedSuite *Suite

func getSuite(t *testing.T) *Suite {
	t.Helper()
	if cachedSuite != nil {
		return cachedSuite
	}
	s, err := Collect(Options{
		Scale:      0.05,
		Benchmarks: []string{"art", "gzip", "gcc", "solitaire", "word"},
	})
	if err != nil {
		t.Fatal(err)
	}
	cachedSuite = s
	return s
}

func TestCollectErrors(t *testing.T) {
	if _, err := Collect(Options{Benchmarks: []string{"nope"}}); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestCollectBasics(t *testing.T) {
	s := getSuite(t)
	if len(s.Runs) != 5 {
		t.Fatalf("runs = %d", len(s.Runs))
	}
	if _, ok := s.Get("gzip"); !ok {
		t.Error("Get(gzip) failed")
	}
	if _, ok := s.Get("nope"); ok {
		t.Error("Get(nope) succeeded")
	}
	if len(s.SpecRuns()) != 3 || len(s.InteractiveRuns()) != 2 {
		t.Errorf("suite split: %d spec, %d interactive", len(s.SpecRuns()), len(s.InteractiveRuns()))
	}
	for _, r := range s.Runs {
		if r.MaxTraceBytes() == 0 {
			t.Errorf("%s: no live trace bytes", r.Profile.Name)
		}
		if len(r.Events) == 0 {
			t.Errorf("%s: no events", r.Profile.Name)
		}
		if r.Stats.Misses != 0 {
			t.Errorf("%s: unbounded run had misses", r.Profile.Name)
		}
	}
}

func TestTable1(t *testing.T) {
	rows := Table1()
	if len(rows) != 12 {
		t.Fatalf("rows = %d", len(rows))
	}
	text := RenderTable1(rows)
	for _, want := range []string{"word", "212", "Word Processor", "acroread", "376"} {
		if !strings.Contains(text, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, text)
		}
	}
}

func TestFigure1(t *testing.T) {
	s := getSuite(t)
	res := Figure1(s)
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.LargestSpec != "gcc" {
		t.Errorf("largest SPEC cache = %s, want gcc", res.LargestSpec)
	}
	if res.LargestInteract != "word" {
		t.Errorf("largest interactive cache = %s, want word", res.LargestInteract)
	}
	if res.InteractAvgKB <= res.SpecAvgKB {
		t.Errorf("interactive avg %.0f <= spec avg %.0f", res.InteractAvgKB, res.SpecAvgKB)
	}
	// word's rescaled cache should be within 2x of the paper's 34.2 MB.
	for _, r := range res.Rows {
		if r.Name == "word" {
			if r.TraceKB < 17000 || r.TraceKB > 70000 {
				t.Errorf("word cache = %.0f KB, paper says 34,200", r.TraceKB)
			}
		}
	}
	if RenderFigure1(res) == "" {
		t.Error("empty render")
	}
}

func TestFigure2(t *testing.T) {
	s := getSuite(t)
	res := Figure2(s)
	// Expansion should be in the vicinity of 500% for both suites.
	if res.SpecAvg < 2.5 || res.SpecAvg > 9 {
		t.Errorf("spec expansion avg = %.1f", res.SpecAvg)
	}
	if res.InteractAvg < 2.5 || res.InteractAvg > 9 {
		t.Errorf("interactive expansion avg = %.1f", res.InteractAvg)
	}
	if RenderFigure2(res) == "" {
		t.Error("empty render")
	}
}

func TestFigure3(t *testing.T) {
	s := getSuite(t)
	rows := Figure3(s)
	rates := map[string]float64{}
	for _, r := range rows {
		rates[r.Name] = r.KBPerS
	}
	// gcc is the paper's outlier at 232 KB/s; it must dwarf gzip.
	if rates["gcc"] < 10*rates["gzip"] {
		t.Errorf("gcc rate %.1f not >> gzip rate %.1f", rates["gcc"], rates["gzip"])
	}
	if RenderFigure3(rows) == "" {
		t.Error("empty render")
	}
}

func TestFigure4(t *testing.T) {
	s := getSuite(t)
	res := Figure4(s)
	for _, r := range res.Rows {
		isSpec := r.Suite != workload.SuiteInteractive
		if isSpec && r.Unmapped != 0 {
			t.Errorf("%s (SPEC) has unmapped traces", r.Name)
		}
	}
	if res.InteractAvg <= 0.02 || res.InteractAvg > 0.5 {
		t.Errorf("interactive unmap avg = %v, paper says ~15%%", res.InteractAvg)
	}
	if RenderFigure4(res) == "" {
		t.Error("empty render")
	}
}

func TestFigure6(t *testing.T) {
	s := getSuite(t)
	rows := Figure6(s)
	for _, r := range rows {
		if r.Short+r.Long <= r.Mid {
			t.Errorf("%s lifetimes not U-shaped: %.2f/%.2f/%.2f", r.Name, r.Short, r.Mid, r.Long)
		}
		sum := 0.0
		for _, b := range r.Buckets {
			sum += b
		}
		if sum < 0.99 || sum > 1.01 {
			t.Errorf("%s buckets sum to %v", r.Name, sum)
		}
	}
	if RenderFigure6(rows) == "" {
		t.Error("empty render")
	}
}

func TestFigure9And10(t *testing.T) {
	s := getSuite(t)
	res, err := Figure9(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 || len(res.Configs) != 3 {
		t.Fatalf("rows = %d configs = %v", len(res.Rows), res.Configs)
	}
	// The paper's best layout (45-10-45 @1, index 1) must show a positive
	// average miss-rate reduction for the interactive suite.
	if res.InteractAvg[1] <= 0 {
		t.Errorf("45-10-45@1 interactive avg reduction = %v", res.InteractAvg[1])
	}
	for _, r := range res.Rows {
		if r.UnifiedMisses == 0 {
			t.Errorf("%s: no unified misses at half capacity", r.Name)
		}
		// word and gcc must individually benefit.
		if (r.Name == "word" || r.Name == "gcc") && r.Reductions[1] <= 0 {
			t.Errorf("%s reduction = %v", r.Name, r.Reductions[1])
		}
	}
	if RenderFigure9(res) == "" || RenderFigure10(res) == "" {
		t.Error("empty render")
	}
}

func TestTable2(t *testing.T) {
	s := getSuite(t)
	rows := Table2(s.Model)
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].AtMedianTrace < 69000 || rows[0].AtMedianTrace > 71000 {
		t.Errorf("trace gen at 242B = %v, paper says 69,834", rows[0].AtMedianTrace)
	}
	text := RenderTable2(rows)
	if !strings.Contains(text, "865") || !strings.Contains(text, "8030") {
		t.Errorf("Table 2 missing formula constants:\n%s", text)
	}
}

func TestFigure11(t *testing.T) {
	s := getSuite(t)
	res, err := Figure11(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// word must land below 100% (an overhead win).
	for _, r := range res.Rows {
		if r.Name == "word" && r.Ratio >= 1 {
			t.Errorf("word overhead ratio = %v", r.Ratio)
		}
		if r.Ratio <= 0 {
			t.Errorf("%s ratio = %v", r.Name, r.Ratio)
		}
	}
	if res.GeoMean <= 0 || res.GeoMean > 1.5 {
		t.Errorf("geomean = %v", res.GeoMean)
	}
	if RenderFigure11(res) == "" {
		t.Error("empty render")
	}
}

func TestSweepAndLink(t *testing.T) {
	// Use a smaller subset: the sweep is 28 configs per benchmark.
	s, err := Collect(Options{Scale: 0.05, Benchmarks: []string{"gzip", "solitaire"}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Sweep(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 28 {
		t.Fatalf("points = %d", len(res.Points))
	}
	if res.Best.AvgReduction <= 0 {
		t.Errorf("best sweep point %s has reduction %v", res.Best.Label(), res.Best.AvgReduction)
	}
	links := ProbationThresholdLink(res)
	if len(links) == 0 {
		t.Fatal("no probation links")
	}
	// The paper's observed interaction: the smallest probation cache must
	// prefer a lower threshold than its worst threshold.
	for _, l := range links {
		if l.ProbationFrac == 0.10 && l.BestThreshold > l.WorstThreshold {
			t.Errorf("10%% probation prefers threshold %d over %d", l.BestThreshold, l.WorstThreshold)
		}
	}
	if RenderSweep(res) == "" {
		t.Error("empty render")
	}
}

func TestAblations(t *testing.T) {
	s := getSuite(t)
	rows, err := Ablations(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]float64{}
	for _, r := range rows {
		byName[r.Name] = r.AvgReduction
	}
	if byName["45-10-45@1 (paper)"] <= 0 {
		t.Errorf("paper design reduction = %v", byName["45-10-45@1 (paper)"])
	}
	if RenderAblations(rows) == "" {
		t.Error("empty render")
	}
}

func TestCycleImpact(t *testing.T) {
	s := getSuite(t)
	fig9, err := Figure9(s)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := CycleImpact(s, fig9)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(fig9.Rows) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Name == "word" && r.ReductionPct <= 0 {
			t.Errorf("word cycle reduction = %v", r.ReductionPct)
		}
		if r.ReductionPct > 50 {
			t.Errorf("%s cycle reduction implausible: %v%%", r.Name, r.ReductionPct)
		}
	}
	if RenderCycleImpact(rows) == "" {
		t.Error("empty render")
	}
}

func TestCapacitySweep(t *testing.T) {
	s := getSuite(t)
	points, err := CapacitySweep(s, []float64{0.25, 0.5, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	// Miss rates must fall as capacity grows, for both schemes.
	for i := 1; i < len(points); i++ {
		if points[i].UnifiedMissRate > points[i-1].UnifiedMissRate {
			t.Errorf("unified miss rate rose with capacity: %+v", points)
		}
		if points[i].GenMissRate > points[i-1].GenMissRate {
			t.Errorf("generational miss rate rose with capacity: %+v", points)
		}
	}
	// At the paper's operating point the generational scheme must win.
	if points[1].AvgReduction <= 0 {
		t.Errorf("no advantage at 50%% capacity: %+v", points[1])
	}
	if RenderCapacitySweep(points) == "" {
		t.Error("empty render")
	}
}

func TestOptimizerImpact(t *testing.T) {
	rows, err := OptimizerImpact([]string{"gzip", "solitaire"}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.TraceBytesOpt > r.TraceBytes {
			t.Errorf("%s: optimizer grew traces (%d -> %d)", r.Name, r.TraceBytes, r.TraceBytesOpt)
		}
		if r.BytesSavedPct < 0 {
			t.Errorf("%s: negative savings %v", r.Name, r.BytesSavedPct)
		}
		if r.OptimizedInsts == 0 {
			t.Errorf("%s: optimizer touched nothing", r.Name)
		}
	}
	if _, err := OptimizerImpact([]string{"nope"}, 0.05); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if RenderOptimizerImpact(rows) == "" {
		t.Error("empty render")
	}
}

func TestSeedOffsetChangesWorkloadNotConclusion(t *testing.T) {
	// A different seed must change the raw event stream but preserve the
	// headline conclusion (generational wins on a big interactive log).
	a, err := Collect(Options{Scale: 0.05, Benchmarks: []string{"word"}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Collect(Options{Scale: 0.05, Benchmarks: []string{"word"}, SeedOffset: 1000})
	if err != nil {
		t.Fatal(err)
	}
	ra, _ := a.Get("word")
	rb, _ := b.Get("word")
	if len(ra.Events) == len(rb.Events) && ra.Stats.TraceBytes == rb.Stats.TraceBytes {
		t.Error("seed offset changed nothing")
	}
	for _, s := range []*Suite{a, b} {
		res, err := Figure9(s)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rows[0].Reductions[1] <= 0 {
			t.Errorf("word reduction with suite %p = %v", s, res.Rows[0].Reductions[1])
		}
	}
}

func TestMedianTraceSizeNearPaper(t *testing.T) {
	s := getSuite(t)
	res := Figure1(s)
	// The paper reports a 242-byte median trace across all benchmarks; the
	// synthetic traces must land in the same regime.
	if res.MedianTraceBytes < 120 || res.MedianTraceBytes > 700 {
		t.Errorf("median trace = %.0f B, paper says 242 B", res.MedianTraceBytes)
	}
}

func TestRobustness(t *testing.T) {
	res, err := Robustness([]string{"gcc", "solitaire"}, 0.05, []int64{0, 500})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	if !res.AllWin {
		t.Errorf("headline failed on some seed: %+v", res.Points)
	}
	if res.Mean <= 0 {
		t.Errorf("mean reduction = %v", res.Mean)
	}
	if RenderRobustness(res) == "" {
		t.Error("empty render")
	}
}
