// The cluster-vs-isolated experiment: the same deterministic session mix
// served by N gencached nodes running either as N fully isolated servers
// (each with its own private shared tier — the pre-cluster deployment) or
// as one N-node distributed shared tier (the cluster subsystem: a
// rendezvous-hashed shard ring, asynchronous replication to shard owners,
// and pull-on-miss cross-node adoption). Replay-visible results are
// bit-identical in both arms by construction — the cluster's core
// invariant — so the comparison is purely about generation cost: how many
// trace generations each deployment actually pays after local and
// cross-node adoptions are credited. The cluster arm must pay fewer.
//
// Peer traffic runs over the real HTTP exchange endpoints and wire codecs,
// but through an in-process loopback transport (no sockets) and on virtual
// clocks, so the whole study is a deterministic function of its options —
// the cluster arm is run twice and must fingerprint identically.

package experiments

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"

	"repro/internal/server"
	"repro/internal/server/api"
	"repro/internal/server/client"
	"repro/internal/simclock"
	"repro/internal/stats"
)

// ClusterVsIsolatedOptions configures the study.
type ClusterVsIsolatedOptions struct {
	// Nodes is the server count in both arms (default 3).
	Nodes int
	// Sessions is the total session count, dealt round-robin across nodes
	// (default 12).
	Sessions int
	// Benches are the workloads in the mix; session i replays bench i mod
	// len(Benches), so with counts coprime to Nodes every node eventually
	// serves every bench (default gzip, word).
	Benches []string
	// Scale is the workload synthesis scale (default 0.05).
	Scale float64
	// Shards is the cluster ring's shard count (default 64).
	Shards int
	// SharedCap is each node's shared-tier capacity (default 8 MiB).
	SharedCap uint64
	// Verify replays every served session offline and counts divergences.
	Verify bool
	// Progress, when non-nil, receives one line per finished arm.
	Progress func(string)
}

func (o ClusterVsIsolatedOptions) withDefaults() ClusterVsIsolatedOptions {
	if o.Nodes == 0 {
		o.Nodes = 3
	}
	if o.Sessions == 0 {
		o.Sessions = 12
	}
	if len(o.Benches) == 0 {
		o.Benches = []string{"gzip", "word"}
	}
	if o.Scale == 0 {
		o.Scale = 0.05
	}
	if o.Shards == 0 {
		o.Shards = 64
	}
	if o.SharedCap == 0 {
		o.SharedCap = 8 << 20
	}
	return o
}

// ClusterArm is one arm's aggregate outcome.
type ClusterArm struct {
	// Gens is the replay-visible generation total (cold creates +
	// regenerations) across all sessions — identical in both arms when the
	// bit-identity invariant holds.
	Gens uint64
	// Adoptions counts local shared-tier adoptions: generations a node
	// avoided paying because an earlier session on the same node (or a
	// replicated publication) had already paid them.
	Adoptions uint64
	// PeerAdoptions counts cross-node adoptions: generations avoided by
	// pulling a publication from its shard owner. Zero in the isolated arm.
	PeerAdoptions uint64
	// SavedInstr is the modeled trace-generation instruction cost the
	// adoptions avoided.
	SavedInstr float64
	// VerifyFailed counts sessions whose served result diverged from the
	// offline replay of the same log. Must be zero.
	VerifyFailed int

	fingerprint string
}

// PaidGens is the arm's headline: generations actually paid after local and
// cross-node adoptions are credited.
func (a ClusterArm) PaidGens() uint64 { return a.Gens - a.Adoptions - a.PeerAdoptions }

// ClusterVsIsolatedResult is the study's outcome.
type ClusterVsIsolatedResult struct {
	Nodes    int
	Sessions int
	Benches  []string

	Isolated ClusterArm
	Cluster  ClusterArm

	// Replicated counts publications accepted by their shard owners in the
	// cluster arm.
	Replicated uint64
	// Deterministic reports that two independent runs of the cluster arm
	// produced byte-identical fingerprints (per-session results, per-node
	// exchange counters).
	Deterministic bool
	// ClusterWins is the headline verdict: the cluster arm paid strictly
	// fewer generations than the isolated arm, at least one adoption crossed
	// nodes, no session diverged from offline replay, and the arm is
	// deterministic.
	ClusterWins bool
}

// GensSaved is the fraction of the isolated arm's paid generations the
// cluster avoided.
func (r ClusterVsIsolatedResult) GensSaved() float64 {
	if r.Isolated.PaidGens() == 0 {
		return 0
	}
	return 1 - float64(r.Cluster.PaidGens())/float64(r.Isolated.PaidGens())
}

// ClusterVsIsolated runs the study.
func ClusterVsIsolated(opts ClusterVsIsolatedOptions) (ClusterVsIsolatedResult, error) {
	o := opts.withDefaults()
	if o.Nodes < 2 {
		return ClusterVsIsolatedResult{}, fmt.Errorf("experiments: cluster-vs-isolated needs at least 2 nodes, got %d", o.Nodes)
	}
	res := ClusterVsIsolatedResult{Nodes: o.Nodes, Sessions: o.Sessions, Benches: o.Benches}

	// One synthesis pass shared by every arm: identical input bytes, and one
	// offline expectation per bench (every session of a bench replays the
	// same log, so one ground truth covers them all).
	logs := make([][]byte, len(o.Benches))
	expected := make([]api.SessionResult, len(o.Benches))
	for i, b := range o.Benches {
		data, err := client.SyntheticLog(b, o.Scale)
		if err != nil {
			return res, err
		}
		logs[i] = data
		if o.Verify {
			exp, err := server.OfflineReplay(server.SessionConfig{}, nil, data)
			if err != nil {
				return res, err
			}
			expected[i] = exp
		}
	}

	progress := func(line string) {
		if o.Progress != nil {
			o.Progress(line)
		}
	}
	iso, _, err := runClusterArm(o, logs, expected, false)
	if err != nil {
		return res, err
	}
	res.Isolated = iso
	progress(fmt.Sprintf("isolated arm done: %d gens paid", iso.PaidGens()))

	cl1, repl, err := runClusterArm(o, logs, expected, true)
	if err != nil {
		return res, err
	}
	cl2, _, err := runClusterArm(o, logs, expected, true)
	if err != nil {
		return res, err
	}
	res.Cluster = cl1
	res.Replicated = repl
	res.Deterministic = cl1.fingerprint == cl2.fingerprint
	progress(fmt.Sprintf("cluster arm done: %d gens paid, %d cross-node adoptions", cl1.PaidGens(), cl1.PeerAdoptions))

	res.ClusterWins = res.Cluster.PaidGens() < res.Isolated.PaidGens() &&
		res.Cluster.PeerAdoptions > 0 &&
		res.Isolated.VerifyFailed == 0 && res.Cluster.VerifyFailed == 0 &&
		res.Deterministic
	return res, nil
}

// loopbackTransport routes peer HTTP requests to in-process handlers by
// host name: the real exchange endpoints and wire codecs, no sockets. The
// handler map is filled after every node is constructed and read only while
// sessions run, single-goroutine.
type loopbackTransport struct {
	handlers map[string]http.Handler
}

func (t *loopbackTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	h, ok := t.handlers[req.URL.Host]
	if !ok {
		return nil, fmt.Errorf("experiments: no cluster node %q", req.URL.Host)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Result(), nil
}

func clusterNodeName(n int) string { return fmt.Sprintf("node-%d", n) }

// runClusterArm serves the deterministic session mix against o.Nodes
// servers — clustered into one distributed shared tier, or fully isolated —
// and returns the arm's totals plus the cluster's replication count.
// Sessions run sequentially in schedule order; the serving node flushes its
// replication queue after every session, the deterministic stand-in for the
// live daemon's replication ticker.
func runClusterArm(o ClusterVsIsolatedOptions, logs [][]byte, expected []api.SessionResult, clustered bool) (ClusterArm, uint64, error) {
	var arm ClusterArm
	rt := &loopbackTransport{handlers: make(map[string]http.Handler)}
	hc := &http.Client{Transport: rt}
	srvs := make([]*server.Server, o.Nodes)
	for n := range srvs {
		cfg := server.Config{
			SharedCapacity: o.SharedCap,
			KeepWarm:       true,
			Logf:           func(string, ...any) {},
			Clock:          simclock.NewVirtual(),
		}
		if clustered {
			cc := &server.ClusterConfig{NodeID: clusterNodeName(n), Shards: o.Shards, HTTPClient: hc}
			for p := 0; p < o.Nodes; p++ {
				if p != n {
					cc.Peers = append(cc.Peers, server.PeerAddr{ID: clusterNodeName(p), URL: "http://" + clusterNodeName(p)})
				}
			}
			cfg.Cluster = cc
		}
		srv, err := server.New(cfg)
		if err != nil {
			return arm, 0, err
		}
		srvs[n] = srv
		if clustered {
			rt.handlers[clusterNodeName(n)] = srv.Handler()
		}
	}

	var fp strings.Builder
	for i := 0; i < o.Sessions; i++ {
		n := i % o.Nodes
		b := i % len(o.Benches)
		res, err := srvs[n].ServeSession(server.SessionConfig{}, logs[b])
		if err != nil {
			return arm, 0, fmt.Errorf("experiments: session %d on %s: %w", i, clusterNodeName(n), err)
		}
		if o.Verify && !server.ResultsEquivalent(res, expected[b]) {
			arm.VerifyFailed++
		}
		arm.Gens += res.ColdCreates + res.Regenerations
		arm.Adoptions += res.Shared.Adoptions
		arm.PeerAdoptions += res.Shared.PeerAdoptions
		arm.SavedInstr += res.Shared.SavedGenInstructions
		fmt.Fprintf(&fp, "%d %s gens=%d adopt=%d peer=%d saved=%.0f\n",
			n, o.Benches[b], res.ColdCreates+res.Regenerations,
			res.Shared.Adoptions, res.Shared.PeerAdoptions, res.Shared.SavedGenInstructions)
		if clustered {
			srvs[n].FlushReplication(context.Background())
		}
	}

	var replicated uint64
	if clustered {
		for _, srv := range srvs {
			cst := srv.Cluster().Stats()
			replicated += cst.Replicated
			fmt.Fprintf(&fp, "%s lookups=%d misses=%d errors=%d peer-adopt=%d repl=%d rej=%d drop=%d owned=%d\n",
				srv.Cluster().ID(), cst.PeerLookups, cst.PeerLookupMisses, cst.PeerLookupErrors,
				cst.PeerAdoptions, cst.Replicated, cst.ReplicateRejected, cst.ReplicateDropped,
				len(srv.Cluster().OwnedShards()))
		}
	}
	arm.fingerprint = fp.String()
	return arm, replicated, nil
}

// RenderClusterVsIsolated renders the study as text.
func RenderClusterVsIsolated(r ClusterVsIsolatedResult) string {
	t := stats.NewTable("Arm", "Nodes", "Sessions", "Gens", "Adopted", "PeerAdopted", "GensPaid", "InstrSaved")
	t.AddRow("isolated", fmt.Sprintf("%d", r.Nodes), fmt.Sprintf("%d", r.Sessions),
		fmt.Sprintf("%d", r.Isolated.Gens), fmt.Sprintf("%d", r.Isolated.Adoptions),
		fmt.Sprintf("%d", r.Isolated.PeerAdoptions), fmt.Sprintf("%d", r.Isolated.PaidGens()),
		stats.FmtCount(uint64(r.Isolated.SavedInstr)))
	t.AddRow("cluster", fmt.Sprintf("%d", r.Nodes), fmt.Sprintf("%d", r.Sessions),
		fmt.Sprintf("%d", r.Cluster.Gens), fmt.Sprintf("%d", r.Cluster.Adoptions),
		fmt.Sprintf("%d", r.Cluster.PeerAdoptions), fmt.Sprintf("%d", r.Cluster.PaidGens()),
		stats.FmtCount(uint64(r.Cluster.SavedInstr)))
	var b strings.Builder
	b.WriteString(t.String())
	fmt.Fprintf(&b, "cluster: %d publications replicated to shard owners; paid generations %d -> %d (%.1f%% saved)\n",
		r.Replicated, r.Isolated.PaidGens(), r.Cluster.PaidGens(), r.GensSaved()*100)
	return b.String()
}
