package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Seed robustness: the calibrated profiles use fixed RNG seeds. This
// experiment re-runs the headline comparison (45-10-45 @1 vs unified at
// half the unbounded footprint) across several seed offsets and reports the
// spread, demonstrating that the reproduction's conclusion is a property of
// the workload *shape*, not of particular random draws.

// RobustnessPoint is one seed offset's headline numbers.
type RobustnessPoint struct {
	SeedOffset   int64
	AvgReduction float64 // unweighted mean miss-rate reduction
	Benchmarks   int
}

// RobustnessResult aggregates the study.
type RobustnessResult struct {
	Points []RobustnessPoint
	Mean   float64
	StdDev float64
	AllWin bool // every seed produced a positive average reduction
}

// Robustness collects the named benchmarks at each seed offset and replays
// the headline comparison.
func Robustness(benchmarks []string, scale float64, offsets []int64) (RobustnessResult, error) {
	return RobustnessContext(context.Background(), benchmarks, scale, offsets, 0)
}

// RobustnessContext is Robustness on an explicit context and parallelism
// level. Offsets stay sequential (each builds on a full collection pass);
// within an offset, collection and the per-benchmark replays run on the
// pipeline.
func RobustnessContext(ctx context.Context, benchmarks []string, scale float64, offsets []int64, parallel int) (RobustnessResult, error) {
	if err := pipeline.Validate(parallel); err != nil {
		return RobustnessResult{}, err
	}
	if len(offsets) == 0 {
		offsets = []int64{0, 1000, 2000}
	}
	var res RobustnessResult
	var avgs []float64
	for _, off := range offsets {
		suite, err := CollectContext(ctx, Options{
			Scale: scale, Benchmarks: benchmarks, SeedOffset: off, Parallel: parallel,
		})
		if err != nil {
			return res, err
		}
		reds, err := perRun(suite, func(r *Run) (*float64, error) {
			capacity := r.MaxTraceBytes() / 2
			if capacity == 0 {
				return nil, nil
			}
			u, err := sim.ReplayUnified(r.Profile.Name, r.Events, capacity, suite.Model)
			if err != nil {
				return nil, err
			}
			if u.MissRate() == 0 {
				return nil, nil
			}
			g, err := sim.ReplayGenerational(r.Profile.Name, r.Events,
				core.Layout451045Threshold1(capacity), suite.Model)
			if err != nil {
				return nil, err
			}
			red := 1 - g.MissRate()/u.MissRate()
			return &red, nil
		})
		if err != nil {
			return res, err
		}
		var sum float64
		n := 0
		for _, red := range reds {
			if red == nil {
				continue
			}
			sum += *red
			n++
		}
		avg := 0.0
		if n > 0 {
			avg = sum / float64(n)
		}
		res.Points = append(res.Points, RobustnessPoint{SeedOffset: off, AvgReduction: avg, Benchmarks: n})
		avgs = append(avgs, avg)
	}
	res.Mean = stats.Mean(avgs)
	res.StdDev = stats.StdDev(avgs)
	res.AllWin = true
	for _, a := range avgs {
		if a <= 0 {
			res.AllWin = false
		}
	}
	return res, nil
}

// RenderRobustness renders the study as text.
func RenderRobustness(res RobustnessResult) string {
	t := stats.NewTable("SeedOffset", "Benchmarks", "AvgMissRateReduction")
	for _, p := range res.Points {
		t.AddRow(fmt.Sprintf("%d", p.SeedOffset), fmt.Sprintf("%d", p.Benchmarks),
			fmt.Sprintf("%+.1f%%", p.AvgReduction*100))
	}
	t.AddRow("(mean ± std)", "", fmt.Sprintf("%+.1f%% ± %.1f%%", res.Mean*100, res.StdDev*100))
	return t.String()
}
