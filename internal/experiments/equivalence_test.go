package experiments

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/dbt"
	"repro/internal/workload"
)

// TestFastDispatchEquivalence is the contract behind the hot-path work: the
// dense-index/inline-cache dispatch path is an implementation detail, so a
// collection pass with SlowDispatch (the original map-based lookups) must be
// bit-for-bit identical — same RunStats, same cache-event log, and therefore
// the same Figure 9 rows after replaying through both the unified and the
// generational cache managers.
func TestFastDispatchEquivalence(t *testing.T) {
	opts := Options{
		Scale:      0.05,
		Benchmarks: []string{"gzip", "solitaire", "word"},
		Parallel:   1,
	}
	fast, err := Collect(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.SlowDispatch = true
	slow, err := Collect(opts)
	if err != nil {
		t.Fatal(err)
	}

	if len(fast.Runs) != len(slow.Runs) {
		t.Fatalf("run counts differ: %d vs %d", len(fast.Runs), len(slow.Runs))
	}
	for i, fr := range fast.Runs {
		sr := slow.Runs[i]
		if !reflect.DeepEqual(fr.Stats, sr.Stats) {
			t.Errorf("%s: RunStats differ\nfast: %+v\nslow: %+v", fr.Profile.Name, fr.Stats, sr.Stats)
		}
		if !reflect.DeepEqual(fr.Events, sr.Events) {
			t.Errorf("%s: cache-event logs differ (%d vs %d events)",
				fr.Profile.Name, len(fr.Events), len(sr.Events))
		}
		if !reflect.DeepEqual(fr.Summary, sr.Summary) {
			t.Errorf("%s: log summaries differ", fr.Profile.Name)
		}
	}

	fastFig9, err := Figure9(fast)
	if err != nil {
		t.Fatal(err)
	}
	slowFig9, err := Figure9(slow)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fastFig9, slowFig9) {
		t.Errorf("Figure 9 results differ between fast and slow dispatch")
	}
}

// TestFastDispatchEquivalenceGenerational drives the engine itself (not just
// replays of its log) under a generational manager, fast vs slow dispatch:
// bounded capacity makes the engine take the eviction/regeneration paths the
// unbounded collection run never exercises.
func TestFastDispatchEquivalenceGenerational(t *testing.T) {
	p, ok := workload.ByName("gzip")
	if !ok {
		t.Fatal("gzip profile missing")
	}
	run := func(slow bool) dbt.RunStats {
		bench, err := workload.Synthesize(p.Scaled(0.05))
		if err != nil {
			t.Fatal(err)
		}
		mgr, err := core.NewGenerational(core.Layout451045Threshold1(48<<10), nil)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := dbt.New(bench.Image, dbt.Config{Manager: mgr, SlowDispatch: slow})
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Run(bench.NewDriver(), 0); err != nil {
			t.Fatal(err)
		}
		return eng.Stats()
	}
	fast, slow := run(false), run(true)
	if !reflect.DeepEqual(fast, slow) {
		t.Errorf("generational RunStats differ\nfast: %+v\nslow: %+v", fast, slow)
	}
}

// Negative parallelism must be rejected at the API boundary, not just by the
// CLI flag handling.
func TestNegativeParallelRejected(t *testing.T) {
	ctx := context.Background()
	if _, err := CollectContext(ctx, Options{Benchmarks: []string{"gzip"}, Parallel: -1}); err == nil {
		t.Error("CollectContext accepted Parallel: -1")
	}
	if _, err := OptimizerImpactContext(ctx, []string{"gzip"}, 0.05, -2); err == nil {
		t.Error("OptimizerImpactContext accepted parallel -2")
	}
	if _, err := RobustnessContext(ctx, []string{"gzip"}, 0.05, nil, -3); err == nil {
		t.Error("RobustnessContext accepted parallel -3")
	}
}
