package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/dbt"
	"repro/internal/pipeline"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Optimizer impact: the engine's trace optimizer (internal/opt) shrinks
// superblock bodies before they enter the cache, so the same capacity holds
// more traces. This experiment runs each benchmark through the full engine
// three times — unbounded (to size the cache), then bounded with the
// optimizer off and on — and reports the byte savings and the resulting
// miss-rate change. It is an extension: the paper keeps trace contents
// fixed and varies only management.

// OptimizerImpactRow is one benchmark's optimizer comparison.
type OptimizerImpactRow struct {
	Name           string
	TraceBytes     uint64 // created trace bytes, optimizer off
	TraceBytesOpt  uint64 // created trace bytes, optimizer on
	BytesSavedPct  float64
	MissRate       float64 // bounded run, optimizer off
	MissRateOpt    float64 // bounded run, optimizer on
	OptimizedInsts uint64
}

// OptimizerImpact measures the optimizer on the named benchmarks at the
// given scale.
func OptimizerImpact(names []string, scale float64) ([]OptimizerImpactRow, error) {
	return OptimizerImpactContext(context.Background(), names, scale, 0)
}

// OptimizerImpactContext is OptimizerImpact on an explicit context and
// parallelism level: each benchmark's three engine runs (unbounded, bounded
// plain, bounded optimized) are one pipeline job.
func OptimizerImpactContext(ctx context.Context, names []string, scale float64, parallel int) ([]OptimizerImpactRow, error) {
	if err := pipeline.Validate(parallel); err != nil {
		return nil, err
	}
	jobs := make([]pipeline.Job[*OptimizerImpactRow], len(names))
	for i, name := range names {
		name := name
		jobs[i] = pipeline.Job[*OptimizerImpactRow]{
			Name: name,
			Run: func(context.Context) (*OptimizerImpactRow, error) {
				p, ok := workload.ByName(name)
				if !ok {
					return nil, fmt.Errorf("experiments: unknown benchmark %q", name)
				}
				bench, err := workload.Synthesize(p.Scaled(scale))
				if err != nil {
					return nil, err
				}
				run := func(capacity uint64, optimize bool) (dbt.RunStats, error) {
					mgr := core.NewUnified(capacity, nil, nil)
					eng, err := dbt.New(bench.Image, dbt.Config{Manager: mgr, Optimize: optimize})
					if err != nil {
						return dbt.RunStats{}, err
					}
					if err := eng.Run(bench.NewDriver(), 0); err != nil {
						return dbt.RunStats{}, err
					}
					return eng.Stats(), nil
				}

				unbounded, err := run(1<<40, false)
				if err != nil {
					return nil, err
				}
				capacity := unbounded.TraceBytes / 2
				if capacity == 0 {
					return nil, nil
				}
				plain, err := run(capacity, false)
				if err != nil {
					return nil, err
				}
				opt, err := run(capacity, true)
				if err != nil {
					return nil, err
				}
				row := &OptimizerImpactRow{
					Name:           name,
					TraceBytes:     plain.TraceBytes,
					TraceBytesOpt:  opt.TraceBytes,
					MissRate:       plain.MissRate(),
					MissRateOpt:    opt.MissRate(),
					OptimizedInsts: opt.OptimizedInsts,
				}
				if plain.TraceBytes > 0 {
					row.BytesSavedPct = 100 * (1 - float64(opt.TraceBytes)/float64(plain.TraceBytes))
				}
				return row, nil
			},
		}
	}
	out, err := pipeline.Map(ctx, pipeline.Options{Parallel: parallel}, jobs)
	if err != nil {
		return nil, err
	}
	var rows []OptimizerImpactRow
	for _, row := range out {
		if row != nil {
			rows = append(rows, *row)
		}
	}
	return rows, nil
}

// RenderOptimizerImpact renders the comparison as text.
func RenderOptimizerImpact(rows []OptimizerImpactRow) string {
	t := stats.NewTable("Benchmark", "TraceBytes", "Optimized", "Saved", "MissRate", "MissRate(opt)")
	for _, r := range rows {
		t.AddRow(r.Name,
			stats.FmtBytes(r.TraceBytes), stats.FmtBytes(r.TraceBytesOpt),
			fmt.Sprintf("%.1f%%", r.BytesSavedPct),
			fmt.Sprintf("%.3f%%", r.MissRate*100), fmt.Sprintf("%.3f%%", r.MissRateOpt*100))
	}
	return t.String()
}
