package policy

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/codecache"
)

func insertN(t *testing.T, p Local, a *codecache.Arena, ids []uint64, size uint64) []uint64 {
	t.Helper()
	var evicted []uint64
	for _, id := range ids {
		err := p.Insert(a, codecache.Fragment{ID: id, Size: size}, func(v codecache.Fragment) {
			evicted = append(evicted, v.ID)
		})
		if err != nil {
			t.Fatalf("insert %d: %v", id, err)
		}
		if err := a.CheckInvariants(); err != nil {
			t.Fatalf("after insert %d: %v", id, err)
		}
	}
	return evicted
}

func TestPseudoCircularDelegates(t *testing.T) {
	p := PseudoCircular{}
	a := codecache.New(300)
	ev := insertN(t, p, a, []uint64{1, 2, 3, 4}, 100)
	if len(ev) != 1 || ev[0] != 1 {
		t.Fatalf("evicted %v, want [1]", ev)
	}
	if p.Name() == "" {
		t.Error("empty name")
	}
	p.OnAccess(a, 2) // must be a no-op
}

func TestLRUEvictsLeastRecent(t *testing.T) {
	p := NewLRU()
	a := codecache.New(300)
	insertN(t, p, a, []uint64{1, 2, 3}, 100)
	// Touch 1 and 3; 2 becomes the LRU victim.
	a.Access(1)
	p.OnAccess(a, 1)
	a.Access(3)
	p.OnAccess(a, 3)
	var ev []uint64
	if err := p.Insert(a, codecache.Fragment{ID: 4, Size: 100}, func(v codecache.Fragment) {
		ev = append(ev, v.ID)
	}); err != nil {
		t.Fatal(err)
	}
	if len(ev) != 1 || ev[0] != 2 {
		t.Fatalf("evicted %v, want [2]", ev)
	}
	if !a.Contains(1) || !a.Contains(3) || !a.Contains(4) {
		t.Error("wrong residents after LRU eviction")
	}
}

func TestLRUFragmentationRequiresMultipleEvictions(t *testing.T) {
	p := NewLRU()
	a := codecache.New(300)
	insertN(t, p, a, []uint64{1, 2, 3}, 100)
	// All three untouched since insert; inserting a 250-byte trace must
	// evict multiple fragments and still find contiguous space.
	var ev []uint64
	if err := p.Insert(a, codecache.Fragment{ID: 4, Size: 250}, func(v codecache.Fragment) {
		ev = append(ev, v.ID)
	}); err != nil {
		t.Fatal(err)
	}
	if len(ev) < 2 {
		t.Fatalf("evicted %v, want at least 2 victims", ev)
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLRUSkipsPinned(t *testing.T) {
	p := NewLRU()
	a := codecache.New(200)
	if err := p.Insert(a, codecache.Fragment{ID: 1, Size: 100, Undeletable: true}, nil); err != nil {
		t.Fatal(err)
	}
	if err := p.Insert(a, codecache.Fragment{ID: 2, Size: 100}, nil); err != nil {
		t.Fatal(err)
	}
	var ev []uint64
	if err := p.Insert(a, codecache.Fragment{ID: 3, Size: 100}, func(v codecache.Fragment) {
		ev = append(ev, v.ID)
	}); err != nil {
		t.Fatal(err)
	}
	if len(ev) != 1 || ev[0] != 2 {
		t.Fatalf("evicted %v, want [2] (1 is pinned)", ev)
	}
}

// TestLRUPinnedEntryRegainsStanding is a regression test: a heap entry
// popped while its fragment was pinned must not be discarded, or the
// fragment silently loses its LRU standing once unpinned.
func TestLRUPinnedEntryRegainsStanding(t *testing.T) {
	p := NewLRU()
	a := codecache.New(300)
	insertN(t, p, a, []uint64{1, 2, 3}, 100)
	if !a.SetUndeletable(1, true) {
		t.Fatal("pin failed")
	}
	// Inserting 4 pops 1's entry (pinned, skipped) and evicts 2 instead.
	var ev []uint64
	if err := p.Insert(a, codecache.Fragment{ID: 4, Size: 100}, func(v codecache.Fragment) {
		ev = append(ev, v.ID)
	}); err != nil {
		t.Fatal(err)
	}
	if len(ev) != 1 || ev[0] != 2 {
		t.Fatalf("evicted %v, want [2] (1 is pinned)", ev)
	}
	// Unpin 1 and make everything else more recent. 1 is now the LRU.
	a.SetUndeletable(1, false)
	for _, id := range []uint64{3, 4} {
		a.Access(id)
		p.OnAccess(a, id)
	}
	ev = ev[:0]
	if err := p.Insert(a, codecache.Fragment{ID: 5, Size: 100}, func(v codecache.Fragment) {
		ev = append(ev, v.ID)
	}); err != nil {
		t.Fatal(err)
	}
	if len(ev) != 1 || ev[0] != 1 {
		t.Fatalf("evicted %v, want [1] (LRU after unpin)", ev)
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestLRUReferencedEntryRegainsStanding mirrors the pinned regression for
// process references: Refs>0 exempts a fragment from policy eviction, and
// releasing the reference must restore its place in LRU order.
func TestLRUReferencedEntryRegainsStanding(t *testing.T) {
	p := NewLRU()
	a := codecache.New(300)
	insertN(t, p, a, []uint64{1, 2, 3}, 100)
	if !a.Retain(1) {
		t.Fatal("retain failed")
	}
	var ev []uint64
	if err := p.Insert(a, codecache.Fragment{ID: 4, Size: 100}, func(v codecache.Fragment) {
		ev = append(ev, v.ID)
	}); err != nil {
		t.Fatal(err)
	}
	if len(ev) != 1 || ev[0] != 2 {
		t.Fatalf("evicted %v, want [2] (1 is referenced)", ev)
	}
	if _, ok := a.Release(1); !ok {
		t.Fatal("release failed")
	}
	for _, id := range []uint64{3, 4} {
		a.Access(id)
		p.OnAccess(a, id)
	}
	ev = ev[:0]
	if err := p.Insert(a, codecache.Fragment{ID: 5, Size: 100}, func(v codecache.Fragment) {
		ev = append(ev, v.ID)
	}); err != nil {
		t.Fatal(err)
	}
	if len(ev) != 1 || ev[0] != 1 {
		t.Fatalf("evicted %v, want [1] (LRU after release)", ev)
	}
}

// TestLRUNoSpaceAllReferenced is a regression test for an unbounded retry:
// the fallback scan used to return referenced fragments, which Delete
// refuses, so Insert spun forever once only referenced fragments remained.
func TestLRUNoSpaceAllReferenced(t *testing.T) {
	p := NewLRU()
	a := codecache.New(200)
	if err := p.Insert(a, codecache.Fragment{ID: 1, Size: 200}, nil); err != nil {
		t.Fatal(err)
	}
	if !a.Retain(1) {
		t.Fatal("retain failed")
	}
	if err := p.Insert(a, codecache.Fragment{ID: 2, Size: 100}, nil); !errors.Is(err, codecache.ErrNoSpace) {
		t.Fatalf("err = %v, want ErrNoSpace", err)
	}
	// Releasing the reference makes 1 evictable again.
	if _, ok := a.Release(1); !ok {
		t.Fatal("release failed")
	}
	var ev []uint64
	if err := p.Insert(a, codecache.Fragment{ID: 2, Size: 100}, func(v codecache.Fragment) {
		ev = append(ev, v.ID)
	}); err != nil {
		t.Fatal(err)
	}
	if len(ev) != 1 || ev[0] != 1 {
		t.Fatalf("evicted %v, want [1]", ev)
	}
}

// TestLRUProgramForcedHoles drives LRU across module unmaps: stale heap
// entries for unmapped fragments must be skipped, holes must be reusable,
// and eviction must still pick the live LRU fragment.
func TestLRUProgramForcedHoles(t *testing.T) {
	p := NewLRU()
	a := codecache.New(400)
	for id := uint64(1); id <= 4; id++ {
		if err := p.Insert(a, codecache.Fragment{ID: id, Size: 100, Module: uint16(id % 2)}, nil); err != nil {
			t.Fatal(err)
		}
	}
	a.Access(2)
	p.OnAccess(a, 2)
	// Unmap module 1: fragments 1 and 3 leave two program-forced holes.
	if gone := a.DeleteModule(1); len(gone) != 2 {
		t.Fatalf("unmapped %d fragments, want 2", len(gone))
	}
	// The next two inserts fill the holes without evicting.
	var ev []uint64
	onEvict := func(v codecache.Fragment) { ev = append(ev, v.ID) }
	for id := uint64(5); id <= 6; id++ {
		if err := p.Insert(a, codecache.Fragment{ID: id, Size: 100}, onEvict); err != nil {
			t.Fatal(err)
		}
		if err := a.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
	if len(ev) != 0 {
		t.Fatalf("hole fills evicted %v", ev)
	}
	// Cache is full again; the live LRU is 4 (2 was touched after it, 5 and
	// 6 are younger). The stale entries for 1, 2, and 3 must all be skipped.
	if err := p.Insert(a, codecache.Fragment{ID: 7, Size: 100}, onEvict); err != nil {
		t.Fatal(err)
	}
	if len(ev) != 1 || ev[0] != 4 {
		t.Fatalf("evicted %v, want [4]", ev)
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestLRUPinnedRandomized churns LRU with pins, references, and module
// unmaps mixed in, checking that pinned or referenced fragments are never
// policy-evicted and the arena model stays consistent.
func TestLRUPinnedRandomized(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	p := NewLRU()
	a := codecache.New(4096)
	live := map[uint64]bool{}
	pinned := map[uint64]bool{}
	refd := map[uint64]bool{}
	id := uint64(1)
	anyLive := func() (uint64, bool) {
		for k := range live {
			return k, true
		}
		return 0, false
	}
	for op := 0; op < 4000; op++ {
		switch r.Intn(8) {
		case 0: // access
			if k, ok := anyLive(); ok && a.Access(k) {
				p.OnAccess(a, k)
			}
		case 1: // toggle pin
			if k, ok := anyLive(); ok {
				pin := !pinned[k]
				a.SetUndeletable(k, pin)
				pinned[k] = pin
			}
		case 2: // toggle process reference
			if k, ok := anyLive(); ok {
				if refd[k] {
					a.Release(k)
				} else {
					a.Retain(k)
				}
				refd[k] = !refd[k]
			}
		case 3: // occasional module unmap (program-forced holes)
			if r.Intn(4) == 0 {
				for _, f := range a.DeleteModule(uint16(r.Intn(4))) {
					delete(live, f.ID)
					delete(pinned, f.ID)
					delete(refd, f.ID)
				}
			}
		default: // insert
			f := codecache.Fragment{ID: id, Size: uint64(64 + r.Intn(700)), Module: uint16(r.Intn(4))}
			id++
			err := p.Insert(a, f, func(v codecache.Fragment) {
				if pinned[v.ID] || refd[v.ID] {
					t.Fatalf("op %d: evicted protected fragment %d", op, v.ID)
				}
				if !live[v.ID] {
					t.Fatalf("op %d: evicted dead fragment %d", op, v.ID)
				}
				delete(live, v.ID)
			})
			if errors.Is(err, codecache.ErrNoSpace) {
				continue // legal when pins and references block every layout
			}
			if err != nil {
				t.Fatalf("op %d: insert: %v", op, err)
			}
			live[f.ID] = true
		}
		if err := a.CheckInvariants(); err != nil {
			t.Fatalf("op %d: %v", op, err)
		}
		if a.Len() != len(live) {
			t.Fatalf("op %d: arena %d vs model %d", op, a.Len(), len(live))
		}
	}
}

func TestLRUNoSpaceAllPinned(t *testing.T) {
	p := NewLRU()
	a := codecache.New(200)
	if err := p.Insert(a, codecache.Fragment{ID: 1, Size: 200, Undeletable: true}, nil); err != nil {
		t.Fatal(err)
	}
	err := p.Insert(a, codecache.Fragment{ID: 2, Size: 100}, nil)
	if !errors.Is(err, codecache.ErrNoSpace) {
		t.Fatalf("err = %v, want ErrNoSpace", err)
	}
	if err := p.Insert(a, codecache.Fragment{ID: 3, Size: 300}, nil); !errors.Is(err, codecache.ErrTooBig) {
		t.Fatalf("err = %v, want ErrTooBig", err)
	}
}

func TestFlushWhenFull(t *testing.T) {
	p := &FlushWhenFull{}
	a := codecache.New(300)
	insertN(t, p, a, []uint64{1, 2, 3}, 100)
	if p.Flushes != 0 {
		t.Fatalf("premature flush")
	}
	var ev []uint64
	if err := p.Insert(a, codecache.Fragment{ID: 4, Size: 100}, func(v codecache.Fragment) {
		ev = append(ev, v.ID)
	}); err != nil {
		t.Fatal(err)
	}
	if p.Flushes != 1 {
		t.Fatalf("flushes = %d, want 1", p.Flushes)
	}
	if len(ev) != 3 {
		t.Fatalf("flush evicted %v, want all three", ev)
	}
	if a.Len() != 1 || !a.Contains(4) {
		t.Error("only fragment 4 should remain")
	}
	if err := p.Insert(a, codecache.Fragment{ID: 5, Size: 400}, nil); !errors.Is(err, codecache.ErrTooBig) {
		t.Fatalf("err = %v", err)
	}
}

func TestPreemptiveFlushOnPhaseChange(t *testing.T) {
	p := NewPreemptiveFlush()
	p.Window = 8
	p.SpikeFactor = 3
	a := codecache.New(1 << 20)
	id := uint64(1)

	// Warm-up phase: slow insertion rate (many accesses between inserts).
	for i := 0; i < 32; i++ {
		if err := p.Insert(a, codecache.Fragment{ID: id, Size: 64}, nil); err != nil {
			t.Fatal(err)
		}
		id++
		for j := 0; j < 50; j++ {
			a.Access(id - 1)
		}
	}
	if p.Flushes != 0 {
		t.Fatalf("flushed during steady phase")
	}
	// Phase change: a burst of back-to-back insertions.
	before := a.Len()
	for i := 0; i < 16; i++ {
		if err := p.Insert(a, codecache.Fragment{ID: id, Size: 64}, nil); err != nil {
			t.Fatal(err)
		}
		id++
	}
	if p.Flushes == 0 {
		t.Fatalf("no preemptive flush after burst (len before %d, after %d)", before, a.Len())
	}
}

func TestPreemptiveFlushWhenFull(t *testing.T) {
	p := NewPreemptiveFlush()
	a := codecache.New(300)
	for id := uint64(1); id <= 4; id++ {
		if err := p.Insert(a, codecache.Fragment{ID: id, Size: 100}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if p.FullFlushes != 1 {
		t.Fatalf("full flushes = %d, want 1", p.FullFlushes)
	}
	if err := p.Insert(a, codecache.Fragment{ID: 9, Size: 400}, nil); !errors.Is(err, codecache.ErrTooBig) {
		t.Fatalf("err = %v", err)
	}
}

func TestUnboundedNeverEvicts(t *testing.T) {
	p := Unbounded{}
	a := codecache.NewUnbounded()
	for id := uint64(1); id <= 500; id++ {
		if err := p.Insert(a, codecache.Fragment{ID: id, Size: 1000}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if a.Len() != 500 {
		t.Fatalf("len = %d", a.Len())
	}
}

func TestUnboundedPanicsWhenTooSmall(t *testing.T) {
	p := Unbounded{}
	a := codecache.New(100)
	if err := p.Insert(a, codecache.Fragment{ID: 1, Size: 80}, nil); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("unbounded policy must panic when forced to evict")
		}
	}()
	_ = p.Insert(a, codecache.Fragment{ID: 2, Size: 80}, nil)
}

func TestNames(t *testing.T) {
	for _, p := range []Local{PseudoCircular{}, NewLRU(), &FlushWhenFull{}, NewPreemptiveFlush(), Unbounded{}} {
		if p.Name() == "" {
			t.Errorf("%T has empty name", p)
		}
	}
}

// TestPoliciesRandomized runs every policy through a random workload and
// checks arena invariants and residency consistency throughout.
func TestPoliciesRandomized(t *testing.T) {
	mk := []func() Local{
		func() Local { return PseudoCircular{} },
		func() Local { return NewLRU() },
		func() Local { return &FlushWhenFull{} },
		func() Local { return NewPreemptiveFlush() },
	}
	for _, make := range mk {
		p := make()
		t.Run(p.Name(), func(t *testing.T) {
			r := rand.New(rand.NewSource(42))
			a := codecache.New(8192)
			live := map[uint64]bool{}
			id := uint64(1)
			for op := 0; op < 2000; op++ {
				if r.Intn(3) == 0 {
					// access a random live fragment
					for k := range live {
						if a.Access(k) {
							p.OnAccess(a, k)
						}
						break
					}
					continue
				}
				f := codecache.Fragment{ID: id, Size: uint64(32 + r.Intn(900))}
				id++
				err := p.Insert(a, f, func(v codecache.Fragment) {
					if !live[v.ID] {
						t.Fatalf("op %d: evicted dead fragment %d", op, v.ID)
					}
					delete(live, v.ID)
				})
				if err != nil {
					t.Fatalf("op %d: insert: %v", op, err)
				}
				live[f.ID] = true
				if err := a.CheckInvariants(); err != nil {
					t.Fatalf("op %d: %v", op, err)
				}
				if a.Len() != len(live) {
					t.Fatalf("op %d: arena %d vs model %d", op, a.Len(), len(live))
				}
			}
		})
	}
}

func TestCircularFirstFitFillsHoles(t *testing.T) {
	p := &CircularFirstFit{}
	a := codecache.New(400)
	for id := uint64(1); id <= 4; id++ {
		if err := p.Insert(a, codecache.Fragment{ID: id, Size: 100, Module: uint16(id % 2)}, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Unmap module 1 (fragments 1 and 3): two 100-byte holes.
	a.DeleteModule(1)
	var ev []uint64
	if err := p.Insert(a, codecache.Fragment{ID: 5, Size: 80}, func(v codecache.Fragment) {
		ev = append(ev, v.ID)
	}); err != nil {
		t.Fatal(err)
	}
	if len(ev) != 0 {
		t.Fatalf("hole fill evicted %v", ev)
	}
	if p.HoleFills == 0 {
		t.Error("hole fill not counted")
	}
	off, _ := a.Offset(5)
	if off != 0 {
		t.Errorf("fragment 5 placed at %d, want hole at 0", off)
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// When no hole fits, it falls back to circular eviction.
	if err := p.Insert(a, codecache.Fragment{ID: 6, Size: 150}, func(v codecache.Fragment) {
		ev = append(ev, v.ID)
	}); err != nil {
		t.Fatal(err)
	}
	if len(ev) == 0 {
		t.Error("oversized insert should have evicted")
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
