package policy

import (
	"testing"

	"repro/internal/codecache"
)

// TestTRRIPTemperatureSeededInsertion checks the core TRRIP contract: a
// trace's insertion heat decides how close to eviction it starts. A cold
// fresh trace must be chosen as victim before a hot promoted one and before
// a resident that just hit.
func TestTRRIPTemperatureSeededInsertion(t *testing.T) {
	p := NewTRRIP()
	a := codecache.New(300)
	// id 1 arrives hot (a promoted victim with re-reference history), ids 2
	// and 3 arrive cold (fresh traces, no accesses yet).
	if err := p.Insert(a, codecache.Fragment{ID: 1, Size: 100, AccessCount: 5}, nil); err != nil {
		t.Fatal(err)
	}
	insertN(t, p, a, []uint64{2, 3}, 100)
	// id 3 hits: its RRPV resets to 0.
	a.Access(3)
	p.OnAccess(a, 3)
	// Inserting id 4 must evict id 2 — the only cold, un-hit resident.
	var ev []uint64
	if err := p.Insert(a, codecache.Fragment{ID: 4, Size: 100}, func(v codecache.Fragment) {
		ev = append(ev, v.ID)
	}); err != nil {
		t.Fatal(err)
	}
	if len(ev) != 1 || ev[0] != 2 {
		t.Fatalf("evicted %v, want [2] (cold and never hit)", ev)
	}
	if !a.Contains(1) || !a.Contains(3) || !a.Contains(4) {
		t.Error("hot and recently-hit residents must survive")
	}
}

// TestTRRIPWarmOutranksCold: a trace with some history inserts warm and
// outlives a cold one under pressure.
func TestTRRIPWarmOutranksCold(t *testing.T) {
	p := NewTRRIP()
	a := codecache.New(200)
	if err := p.Insert(a, codecache.Fragment{ID: 1, Size: 100, AccessCount: 1}, nil); err != nil {
		t.Fatal(err)
	}
	if err := p.Insert(a, codecache.Fragment{ID: 2, Size: 100}, nil); err != nil {
		t.Fatal(err)
	}
	var ev []uint64
	if err := p.Insert(a, codecache.Fragment{ID: 3, Size: 100}, func(v codecache.Fragment) {
		ev = append(ev, v.ID)
	}); err != nil {
		t.Fatal(err)
	}
	if len(ev) != 1 || ev[0] != 2 {
		t.Fatalf("evicted %v, want the cold trace [2]", ev)
	}
}

// TestTRRIPUniformColdEvictsInAddressOrder: with no heat signal anywhere the
// policy must still be deterministic — equal-RRPV victims fall to address
// order.
func TestTRRIPUniformColdEvictsInAddressOrder(t *testing.T) {
	p := NewTRRIP()
	a := codecache.New(300)
	insertN(t, p, a, []uint64{1, 2, 3}, 100)
	var ev []uint64
	onEvict := func(v codecache.Fragment) { ev = append(ev, v.ID) }
	for id := uint64(4); id <= 6; id++ {
		if err := p.Insert(a, codecache.Fragment{ID: id, Size: 100}, onEvict); err != nil {
			t.Fatal(err)
		}
	}
	if len(ev) != 3 || ev[0] != 1 || ev[1] != 2 || ev[2] != 3 {
		t.Fatalf("eviction order %v, want [1 2 3]", ev)
	}
}

// TestTRRIPAgingEventuallyEvictsProtected: aging must erode a hit's
// protection, or one early hit pins a dead trace forever.
func TestTRRIPAgingEventuallyEvictsProtected(t *testing.T) {
	p := NewTRRIP()
	a := codecache.New(200)
	insertN(t, p, a, []uint64{1, 2}, 100)
	a.Access(1)
	p.OnAccess(a, 1) // id 1 at RRPV 0
	var ev []uint64
	onEvict := func(v codecache.Fragment) { ev = append(ev, v.ID) }
	// Each insertion evicts the current max-RRPV resident and ages id 1; the
	// never-accessed churn keeps losing first, but id 1 must fall eventually.
	for id := uint64(3); id <= 12; id++ {
		if err := p.Insert(a, codecache.Fragment{ID: id, Size: 100}, onEvict); err != nil {
			t.Fatal(err)
		}
	}
	for _, v := range ev {
		if v == 1 {
			return
		}
	}
	t.Fatalf("id 1 never evicted over %v; aging is broken", ev)
}

func TestTRRIPSkipsPinnedAndReferenced(t *testing.T) {
	p := NewTRRIP()
	a := codecache.New(300)
	insertN(t, p, a, []uint64{1, 2, 3}, 100)
	if !a.SetUndeletable(1, true) {
		t.Fatal("pin failed")
	}
	if !a.Retain(2) {
		t.Fatal("retain failed")
	}
	var ev []uint64
	if err := p.Insert(a, codecache.Fragment{ID: 4, Size: 100}, func(v codecache.Fragment) {
		ev = append(ev, v.ID)
	}); err != nil {
		t.Fatal(err)
	}
	if len(ev) != 1 || ev[0] != 3 {
		t.Fatalf("evicted %v, want [3] (1 pinned, 2 referenced)", ev)
	}
}

// TestTRRIPAdopt: a freshly installed instance (an online-selector switch)
// classifies inherited residents by their in-place heat instead of treating
// the whole cache as unknown.
func TestTRRIPAdopt(t *testing.T) {
	seed := NewLRU()
	a := codecache.New(300)
	insertN(t, seed, a, []uint64{1, 2, 3}, 100)
	// id 2 ran hot in place.
	for i := 0; i < 3; i++ {
		a.Access(2)
		seed.OnAccess(a, 2)
	}
	p := NewTRRIP()
	p.Adopt(a)
	var ev []uint64
	onEvict := func(v codecache.Fragment) { ev = append(ev, v.ID) }
	if err := p.Insert(a, codecache.Fragment{ID: 4, Size: 100}, onEvict); err != nil {
		t.Fatal(err)
	}
	if err := p.Insert(a, codecache.Fragment{ID: 5, Size: 100}, onEvict); err != nil {
		t.Fatal(err)
	}
	if len(ev) != 2 || ev[0] != 1 || ev[1] != 3 {
		t.Fatalf("evicted %v, want [1 3] (2 adopted as hot)", ev)
	}
	if !a.Contains(2) {
		t.Error("hot adopted resident evicted")
	}
}

// TestTRRIPParamClamping: registry parameters above max clamp instead of
// wrapping the uint8 RRPV space.
func TestTRRIPParamClamping(t *testing.T) {
	fac, err := Parse("trrip:max=3,cold=9,warm=9")
	if err != nil {
		t.Fatal(err)
	}
	p := fac.New().(*TRRIP)
	if p.Cold != 3 || p.Warm != 3 {
		t.Errorf("cold/warm = %d/%d, want clamped to max 3", p.Cold, p.Warm)
	}
	fac, err = Parse("trrip:max=0")
	if err != nil {
		t.Fatal(err)
	}
	if p := fac.New().(*TRRIP); p.Max != 1 {
		t.Errorf("max = %d, want floor 1", p.Max)
	}
}
