package policy

import (
	"errors"

	"repro/internal/codecache"
)

// Shadow races one challenger policy against a live tier's demand stream.
// It owns a private model arena with the same capacity as the live tier —
// byte-accurate, because arenas track fragment geometry only (no code bytes
// exist anywhere in the simulation), so a shadow costs a second set of
// bookkeeping, not a second cache. The online selector feeds every shadow
// the live tier's stimulus — demand probes, arriving fragments, forced
// removals — and each shadow's own policy makes its own victim choices, so
// its window hit count answers "how many of this tier's probes would have
// hit had this policy been live?".
//
// Capacity-driven evictions are deliberately NOT mirrored: they are exactly
// the decisions under test, and the shadow's policy replays them itself
// during Insert. Only non-policy removals — promote-on-access upgrades,
// module unmaps, pins, capacity shifts — are forwarded, because the live
// tier would have experienced those under any policy. Shadow arenas carry no
// observer, so counterfactual activity never reaches the obs stream or any
// stats consumer.
type Shadow struct {
	arena *codecache.Arena
	local Local

	probes uint64
	hits   uint64

	// Lifetime totals, never reset: the selector demands a cumulative lead
	// as well as a window win before switching, so one lucky window cannot
	// steal a tier from the policy that serves it best overall.
	totalProbes uint64
	totalHits   uint64
}

// NewShadow builds a shadow of a tier with the given capacity, running the
// given policy instance (which must be private to this shadow).
func NewShadow(capacity uint64, local Local) *Shadow {
	return &Shadow{arena: codecache.New(capacity), local: local}
}

// Policy returns the shadow's policy instance.
func (s *Shadow) Policy() Local { return s.local }

// Arena exposes the model arena for equivalence tests.
func (s *Shadow) Arena() *codecache.Arena { return s.arena }

// Probe replays one demand access and reports whether the shadow would have
// hit. This is the hot path: one arena access plus the policy's recency
// bookkeeping, allocation-free in steady state.
func (s *Shadow) Probe(id uint64) bool {
	s.probes++
	s.totalProbes++
	if s.arena.Access(id) {
		s.hits++
		s.totalHits++
		s.local.OnAccess(s.arena, id)
		return true
	}
	return false
}

// Insert replays a fragment arriving in the live tier. The shadow's policy
// chooses its own victims; they vanish (a counterfactual eviction has no
// downstream tier to land in). A fragment the shadow still holds — the live
// tier evicted it, the shadow's policy kept it, and it is now being
// regenerated — is left in place.
func (s *Shadow) Insert(f codecache.Fragment) {
	if s.arena.Contains(f.ID) {
		return
	}
	_ = s.local.Insert(s.arena, f, nil)
}

// Remove mirrors a non-policy removal (a promote-on-access upgrade pulling
// the trace into the next tier). Absent fragments are ignored.
func (s *Shadow) Remove(id uint64) {
	if s.arena.Contains(id) {
		_, _ = s.arena.Delete(id, true)
	}
}

// UnmapModule mirrors a program-forced module unmap.
func (s *Shadow) UnmapModule(m uint16) {
	s.arena.DeleteModule(m)
}

// SetPinned mirrors a pin state change. The shadow may hold the fragment
// even when the live tier does not (or vice versa); absent IDs are ignored.
func (s *Shadow) SetPinned(id uint64, pinned bool) {
	s.arena.SetUndeletable(id, pinned)
}

// Resize mirrors a capacity shift from the adaptive split controller. The
// live tier's resize already succeeded, but the shadow's layout may differ
// and park a pinned fragment in the truncated tail; such fragments are
// force-removed so the model always matches the live capacity.
func (s *Shadow) Resize(newCapacity uint64) {
	for {
		err := s.arena.Resize(newCapacity, nil)
		if err == nil || !errors.Is(err, codecache.ErrResizePinned) {
			return
		}
		var pinnedID uint64
		found := false
		s.arena.Visit(func(f *codecache.Fragment) bool {
			if f.Undeletable {
				if off, ok := s.arena.Offset(f.ID); ok && off+f.Size > newCapacity {
					pinnedID, found = f.ID, true
					return false
				}
			}
			return true
		})
		if !found {
			return
		}
		_, _ = s.arena.Delete(pinnedID, true)
	}
}

// WindowHits returns the hits scored since the last ResetWindow.
func (s *Shadow) WindowHits() uint64 { return s.hits }

// TotalHits returns the hits scored over the shadow's whole lifetime.
func (s *Shadow) TotalHits() uint64 { return s.totalHits }

// TotalProbes returns the probes seen over the shadow's whole lifetime.
func (s *Shadow) TotalProbes() uint64 { return s.totalProbes }

// WindowProbes returns the probes seen since the last ResetWindow.
func (s *Shadow) WindowProbes() uint64 { return s.probes }

// ResetWindow zeroes the window counters at an epoch boundary.
func (s *Shadow) ResetWindow() { s.hits, s.probes = 0, 0 }
