package policy

import (
	"errors"

	"repro/internal/codecache"
)

// TRRIP is a trace-cache adaptation of re-reference interval prediction
// (SRRIP with temperature-seeded insertion). Every resident trace carries a
// re-reference prediction value (RRPV): 0 predicts imminent re-execution,
// Max predicts none. Insertions are classified by the heat the trace brings
// with it — the access count accumulated while it was resident in the tier
// it came from, which the dispatcher feeds from the same counters that drive
// bb-cache trace selection. A promoted victim that ran hot inserts near 0, a
// trace with some history inserts warm, and a freshly built trace (no
// re-reference evidence yet) inserts cold, one step from eviction. Hits
// promote to 0; when no victim is at Max the whole cache ages in one step.
type TRRIP struct {
	// Max is the distant-future RRPV; victims are taken from it.
	Max uint8
	// Cold is the insertion RRPV for traces with no prior accesses.
	Cold uint8
	// Warm is the insertion RRPV for traces with some prior accesses.
	Warm uint8
	// Hot is the prior-access count at or above which a trace inserts at 0.
	Hot uint64

	spec string

	// rrpv is the dense prediction table, indexed by fragment ID (trace IDs
	// are assigned sequentially); spill holds IDs past the dense bound. Only
	// entries for resident fragments are meaningful.
	rrpv  []uint8
	spill map[uint64]uint8
}

// trripDenseIDs bounds the dense RRPV table, mirroring the arena's dense
// fragment index.
const trripDenseIDs = 1 << 21

// NewTRRIP returns a TRRIP policy with the default geometry (3-bit RRPV:
// max 7, cold 6, warm 4, hot threshold 2).
func NewTRRIP() *TRRIP {
	return &TRRIP{Max: 7, Cold: 6, Warm: 4, Hot: 2, spec: "trrip"}
}

// newTRRIPFrom builds a TRRIP instance from registry parameters. Insertion
// values above max clamp to max.
func newTRRIPFrom(p *paramSet) *TRRIP {
	t := &TRRIP{
		Max:  uint8(p.uint("max", 7)),
		Cold: uint8(p.uint("cold", 6)),
		Warm: uint8(p.uint("warm", 4)),
		Hot:  p.uint("hot", 2),
	}
	if t.Max == 0 {
		t.Max = 1
	}
	if t.Cold > t.Max {
		t.Cold = t.Max
	}
	if t.Warm > t.Max {
		t.Warm = t.Max
	}
	t.spec = "trrip"
	return t
}

// Name implements Local.
func (t *TRRIP) Name() string { return t.spec }

// get returns the RRPV recorded for an ID (0 when never set).
func (t *TRRIP) get(id uint64) uint8 {
	if id < uint64(len(t.rrpv)) {
		return t.rrpv[id]
	}
	return t.spill[id]
}

// set records the RRPV for an ID, growing the dense table on demand.
func (t *TRRIP) set(id uint64, v uint8) {
	if id < trripDenseIDs {
		if id >= uint64(len(t.rrpv)) {
			n := len(t.rrpv) * 2
			if n < 64 {
				n = 64
			}
			if uint64(n) <= id {
				n = int(id) + 1
			}
			if n > trripDenseIDs {
				n = trripDenseIDs
			}
			grown := make([]uint8, n)
			copy(grown, t.rrpv)
			t.rrpv = grown
		}
		t.rrpv[id] = v
		return
	}
	if t.spill == nil {
		t.spill = make(map[uint64]uint8)
	}
	t.spill[id] = v
}

// classify maps a trace's insertion heat to its starting RRPV.
func (t *TRRIP) classify(f codecache.Fragment) uint8 {
	switch {
	case f.AccessCount >= t.Hot:
		return 0
	case f.AccessCount > 0:
		return t.Warm
	default:
		return t.Cold
	}
}

// OnAccess implements Local: a hit predicts imminent re-reference.
func (t *TRRIP) OnAccess(a *codecache.Arena, id uint64) {
	t.set(id, 0)
}

// Adopt implements Adopter: classify the residents a freshly installed
// instance inherits by the heat they accumulated in place.
func (t *TRRIP) Adopt(a *codecache.Arena) {
	a.Visit(func(f *codecache.Fragment) bool {
		t.set(f.ID, t.classify(*f))
		return true
	})
}

// Insert implements Local.
func (t *TRRIP) Insert(a *codecache.Arena, f codecache.Fragment, onEvict func(codecache.Fragment)) error {
	if f.Size > a.Capacity() {
		return codecache.ErrTooBig
	}
	for {
		err := a.PlaceFirstFit(f)
		if err == nil {
			t.set(f.ID, t.classify(f))
			return nil
		}
		if !errors.Is(err, codecache.ErrNoSpace) {
			return err
		}
		victim, ok := t.victim(a)
		if !ok {
			return codecache.ErrNoSpace
		}
		v, derr := a.Delete(victim, false)
		if derr != nil {
			continue // pinned or referenced since selection; rescan
		}
		if onEvict != nil {
			onEvict(v)
		}
	}
}

// victim picks the first evictable fragment, in address order, holding the
// largest RRPV currently present, then ages every other evictable resident
// by the distance to Max — the single-step equivalent of RRIP's "increment
// all and rescan" loop, without the rescans. Address order keeps the choice
// deterministic.
func (t *TRRIP) victim(a *codecache.Arena) (uint64, bool) {
	var bestID uint64
	var bestVal uint8
	found := false
	a.Visit(func(f *codecache.Fragment) bool {
		if f.Undeletable || f.Refs > 0 {
			return true
		}
		v := t.get(f.ID)
		if v > t.Max {
			v = t.Max
		}
		if !found || v > bestVal {
			bestID, bestVal, found = f.ID, v, true
			if bestVal == t.Max {
				return false // nothing can outrank Max; stop at the first
			}
		}
		return true
	})
	if !found {
		return 0, false
	}
	if age := t.Max - bestVal; age > 0 {
		a.Visit(func(f *codecache.Fragment) bool {
			if f.Undeletable || f.Refs > 0 || f.ID == bestID {
				return true
			}
			v := uint16(t.get(f.ID)) + uint16(age)
			if v > uint16(t.Max) {
				v = uint16(t.Max)
			}
			t.set(f.ID, uint8(v))
			return true
		})
	}
	return bestID, true
}
