package policy

import (
	"strings"
	"testing"
)

func TestRegistryParseNamesAndAliases(t *testing.T) {
	cases := []struct {
		spec string
		name string // Local.Name() of the built instance
	}{
		{"pseudo-circular", "pseudo-circular"},
		{"circ", "pseudo-circular"},
		{"lru", "lru"},
		{"trrip", "trrip"},
		{"flush", "flush-when-full"},
		{"preflush", "preemptive-flush"},
		{"cff", "circular-first-fit"},
	}
	for _, c := range cases {
		fac, err := Parse(c.spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.spec, err)
		}
		if got := fac.New().Name(); got != c.name {
			t.Errorf("Parse(%q).New().Name() = %q, want %q", c.spec, got, c.name)
		}
	}
}

func TestRegistryParseCanonicalizesSpec(t *testing.T) {
	fac, err := Parse("circ")
	if err != nil {
		t.Fatal(err)
	}
	if fac.Spec() != "pseudo-circular" {
		t.Errorf("Spec() = %q, want canonical name", fac.Spec())
	}
	fac, err = Parse("trrip:cold=5")
	if err != nil {
		t.Fatal(err)
	}
	if fac.Spec() != "trrip:cold=5" {
		t.Errorf("Spec() = %q, want parameters preserved", fac.Spec())
	}
	// Re-parsing a canonical spec must round-trip.
	again, err := Parse(fac.Spec())
	if err != nil {
		t.Fatal(err)
	}
	if again.Spec() != fac.Spec() {
		t.Errorf("re-parse changed spec: %q vs %q", again.Spec(), fac.Spec())
	}
}

func TestRegistryFactoryInstancesAreFresh(t *testing.T) {
	fac, err := Parse("lru")
	if err != nil {
		t.Fatal(err)
	}
	if fac.New() == fac.New() {
		t.Error("factory returned the same instance twice; policies are stateful and must be private")
	}
}

func TestRegistryParseErrors(t *testing.T) {
	for _, spec := range []string{
		"",                    // empty name
		"nosuch",              // unknown policy
		"lru:foo=1",           // unknown parameter
		"trrip:nope=3",        // unknown parameter on a parameterized policy
		"trrip:cold",          // malformed (no value)
		"trrip:=4",            // malformed (no key)
		"trrip:cold=x",        // non-numeric value
		"trrip:cold=4,cold=5", // duplicate key
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
}

func TestRegistryListAndDescribe(t *testing.T) {
	infos := List()
	if len(infos) < 6 {
		t.Fatalf("registry lists %d policies, want at least 6", len(infos))
	}
	if infos[0].Name != "pseudo-circular" {
		t.Errorf("first listed policy %q, want the paper's stock policy", infos[0].Name)
	}
	desc := Describe()
	for _, in := range infos {
		if !strings.Contains(desc, in.Name) {
			t.Errorf("Describe() missing policy %q", in.Name)
		}
	}
	if !strings.Contains(desc, "auto") {
		t.Error("Describe() missing the auto pseudo-policy")
	}
}
