package policy

import (
	"math/rand"
	"testing"

	"repro/internal/codecache"
)

// TestLRUHeapStaysBounded is the compaction regression test: a hot working
// set re-accessed many times between evictions pushes one lazy heap entry per
// hit, and before maybeCompact the heap grew without bound. Churn a handful
// of residents hard and assert the documented bound holds throughout.
func TestLRUHeapStaysBounded(t *testing.T) {
	l := NewLRU()
	a := codecache.New(1000)
	insertN(t, l, a, []uint64{1, 2, 3, 4, 5}, 100)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		id := uint64(1 + rng.Intn(5))
		a.Access(id)
		l.OnAccess(a, id)
		if max := lruCompactSlack + 2*a.Len(); len(l.h) > max {
			t.Fatalf("after %d accesses heap has %d entries, bound is %d", i+1, len(l.h), max)
		}
	}
	// The bound must survive evictions too: fill the cache so victims leave
	// stale entries behind, then churn again.
	for id := uint64(10); id < 30; id++ {
		if err := l.Insert(a, codecache.Fragment{ID: id, Size: 100}, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10000; i++ {
		id := uint64(10 + rng.Intn(10))
		if a.Access(id) {
			l.OnAccess(a, id)
		}
		if max := lruCompactSlack + 2*a.Len(); len(l.h) > max {
			t.Fatalf("post-eviction churn %d: heap has %d entries, bound is %d", i+1, len(l.h), max)
		}
	}
	// Compaction must not change who the next victim is.
	if v, ok := l.victim(a); ok {
		if f, lookupOK := a.Lookup(v); !lookupOK {
			t.Fatalf("victim %d not resident", v)
		} else {
			a.Visit(func(g *codecache.Fragment) bool {
				if !g.Undeletable && g.LastAccess < f.LastAccess {
					t.Errorf("victim %d (last %d) is not the LRU resident; %d is older (last %d)",
						v, f.LastAccess, g.ID, g.LastAccess)
					return false
				}
				return true
			})
		}
	}
}

// TestShadowMatchesLiveLRU is the shadow-model equivalence test: a Shadow
// wrapping a fresh LRU, fed exactly the stimulus a live LRU tier sees, must
// reproduce the live tier's residency and hit count exactly. This is the
// property the online selector leans on — a shadow of the live policy IS the
// live tier, so any divergence between shadow scores measures the policies,
// not the model.
func TestShadowMatchesLiveLRU(t *testing.T) {
	const capacity = 1200
	live := NewLRU()
	arena := codecache.New(capacity)
	sh := NewShadow(capacity, NewLRU())

	rng := rand.New(rand.NewSource(42))
	var liveHits, liveProbes uint64
	next := uint64(1)
	for step := 0; step < 5000; step++ {
		if next == 1 || rng.Intn(4) == 0 {
			// A new trace arrives in both worlds.
			f := codecache.Fragment{ID: next, Size: 80 + uint64(rng.Intn(5))*40}
			next++
			if err := live.Insert(arena, f, nil); err != nil {
				t.Fatal(err)
			}
			sh.Insert(f)
			continue
		}
		// A demand probe over the recent id space.
		lo := uint64(1)
		if next > 20 {
			lo = next - 20
		}
		id := lo + uint64(rng.Int63n(int64(next-lo)))
		liveProbes++
		hit := arena.Access(id)
		if hit {
			liveHits++
			live.OnAccess(arena, id)
		}
		if got := sh.Probe(id); got != hit {
			t.Fatalf("step %d: shadow probe(%d) = %v, live = %v", step, id, got, hit)
		}
	}
	if sh.TotalHits() != liveHits || sh.TotalProbes() != liveProbes {
		t.Fatalf("shadow scored %d/%d, live %d/%d",
			sh.TotalHits(), sh.TotalProbes(), liveHits, liveProbes)
	}
	// Residency must match fragment for fragment.
	if sh.Arena().Len() != arena.Len() {
		t.Fatalf("shadow holds %d fragments, live holds %d", sh.Arena().Len(), arena.Len())
	}
	arena.Visit(func(f *codecache.Fragment) bool {
		if !sh.Arena().Contains(f.ID) {
			t.Errorf("live resident %d missing from shadow", f.ID)
		}
		return true
	})
}

// TestShadowMirrorsNonPolicyRemovals: removals the live tier suffers for
// non-policy reasons (promotions, unmaps, pins) must reach the model, and
// capacity shifts must never leave the model oversized.
func TestShadowMirrorsNonPolicyRemovals(t *testing.T) {
	sh := NewShadow(1000, NewLRU())
	for id := uint64(1); id <= 5; id++ {
		sh.Insert(codecache.Fragment{ID: id, Size: 100, Module: uint16(id % 2)})
	}
	sh.Remove(3)
	if sh.Arena().Contains(3) {
		t.Error("Remove left fragment 3 resident")
	}
	sh.Remove(3) // absent: must be a no-op
	sh.UnmapModule(1)
	if sh.Arena().Contains(1) || sh.Arena().Contains(5) {
		t.Error("UnmapModule left module-1 fragments resident")
	}
	sh.SetPinned(2, true)
	sh.Resize(150)
	if sh.Arena().Capacity() != 150 {
		t.Fatalf("capacity %d after Resize(150)", sh.Arena().Capacity())
	}
	if sh.Arena().Used() > 150 {
		t.Fatalf("model oversized: %d bytes in a 150-byte arena", sh.Arena().Used())
	}
}

// TestShadowProbeAllocationFree: the selector probes every shadow on every
// tier access — the hot path must not allocate in steady state.
func TestShadowProbeAllocationFree(t *testing.T) {
	sh := NewShadow(1000, NewLRU())
	for id := uint64(1); id <= 8; id++ {
		sh.Insert(codecache.Fragment{ID: id, Size: 100})
	}
	// Warm up: let the lazy LRU heap reach its steady-state capacity.
	for i := 0; i < 4096; i++ {
		sh.Probe(uint64(1 + i%8))
	}
	id := uint64(0)
	if avg := testing.AllocsPerRun(2048, func() {
		sh.Probe(uint64(1 + id%8))
		id++
	}); avg != 0 {
		t.Errorf("Shadow.Probe allocates %.2f per op on the hit path", avg)
	}
}
