// Package policy implements the paper's *local* code-cache management
// policies (§4): replacement disciplines that operate within a single cache.
// The pseudo-circular policy of §4.3 is the one the generational design
// builds on; LRU, flush-when-full, preemptive flushing (Dynamo's scheme),
// and unbounded caches are the baselines the paper's prior work compared.
package policy

import (
	"errors"

	"repro/internal/codecache"
	"repro/internal/obs"
)

// Local is a replacement policy for one code-cache arena. Implementations
// choose victims when an insertion does not fit. Every capacity-driven
// victim is reported through onEvict.
type Local interface {
	// Name identifies the policy in experiment output.
	Name() string
	// Insert places f into a, evicting resident fragments as the policy
	// dictates. It returns codecache.ErrNoSpace when no legal eviction
	// sequence frees enough room, and codecache.ErrTooBig when f can never
	// fit.
	Insert(a *codecache.Arena, f codecache.Fragment, onEvict func(codecache.Fragment)) error
	// OnAccess lets the policy maintain recency bookkeeping. The arena has
	// already recorded the access.
	OnAccess(a *codecache.Arena, id uint64)
}

// Adopter is implemented by policies that can prime their bookkeeping from
// an arena's current residents. The online policy selector installs fresh
// policy instances mid-run; without adoption the new policy would see a full
// cache it knows nothing about and make arbitrary victim choices until its
// own bookkeeping catches up.
type Adopter interface {
	// Adopt primes the policy from a's residents. It is called once, before
	// the policy serves its first Insert or OnAccess for a.
	Adopt(a *codecache.Arena)
}

// PseudoCircular is the paper's §4.3 policy: a circular (FIFO) sweep that
// resets past undeletable fragments and absorbs program-forced holes into
// its path. It delegates entirely to the arena's built-in sweep.
type PseudoCircular struct{}

// Name implements Local.
func (PseudoCircular) Name() string { return "pseudo-circular" }

// Insert implements Local.
func (PseudoCircular) Insert(a *codecache.Arena, f codecache.Fragment, onEvict func(codecache.Fragment)) error {
	return a.Insert(f, onEvict)
}

// OnAccess implements Local.
func (PseudoCircular) OnAccess(*codecache.Arena, uint64) {}

// LRU evicts the least-recently-used fragment until the insertion fits
// somewhere. The paper's prior work found it competitive on miss rate but
// fragmentation-prone and expensive; it is here as a baseline and as the
// alternate local policy for the generational ablation.
type LRU struct {
	h lruHeap

	// held is victim()'s reusable scratch for entries set aside because their
	// fragments are currently pinned or referenced.
	held []lruEntry
}

// NewLRU returns an empty LRU policy.
func NewLRU() *LRU { return &LRU{} }

type lruEntry struct {
	id   uint64
	last uint64
}

// lruHeap is a hand-rolled min-heap on last-access time. container/heap
// would box every entry into an interface on Push — one allocation per cache
// hit, twice over once the online selector shadows the policy — so the sift
// loops are written out here and the hot path stays allocation-free.
type lruHeap []lruEntry

func (h *lruHeap) push(e lruEntry) {
	*h = append(*h, e)
	s := *h
	for i := len(s) - 1; i > 0; {
		parent := (i - 1) / 2
		if s[parent].last <= s[i].last {
			break
		}
		s[parent], s[i] = s[i], s[parent]
		i = parent
	}
}

func (h *lruHeap) popMin() (lruEntry, bool) {
	s := *h
	if len(s) == 0 {
		return lruEntry{}, false
	}
	min := s[0]
	n := len(s) - 1
	s[0] = s[n]
	*h = s[:n]
	h.siftDown(0)
	return min, true
}

func (h *lruHeap) siftDown(i int) {
	s := *h
	n := len(s)
	for {
		child := 2*i + 1
		if child >= n {
			return
		}
		if r := child + 1; r < n && s[r].last < s[child].last {
			child = r
		}
		if s[i].last <= s[child].last {
			return
		}
		s[i], s[child] = s[child], s[i]
		i = child
	}
}

func (h *lruHeap) init() {
	for i := len(*h)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

// Name implements Local.
func (l *LRU) Name() string { return "lru" }

// OnAccess implements Local. Entries are pushed lazily; stale heap entries
// are discarded at pop time by comparing against the arena's current state.
func (l *LRU) OnAccess(a *codecache.Arena, id uint64) {
	if f, ok := a.Lookup(id); ok {
		l.h.push(lruEntry{id: id, last: f.LastAccess})
		l.maybeCompact(a)
	}
}

// lruCompactSlack is how far past twice the resident count the heap may grow
// before compaction; the slack keeps tiny caches from compacting on every
// access.
const lruCompactSlack = 64

// maybeCompact bounds the heap. Pushes are lazy, so every re-access of a
// resident fragment leaves a stale entry behind; a hot working set accessed
// many times between evictions would otherwise grow the heap without bound.
// Once stale entries outnumber live ones, rebuild the heap in place keeping
// only entries that still record a resident fragment's current recency —
// each resident has at most one such entry, so the compacted heap is
// O(resident) and the retained capacity makes subsequent pushes
// allocation-free.
func (l *LRU) maybeCompact(a *codecache.Arena) {
	if len(l.h) <= lruCompactSlack+2*a.Len() {
		return
	}
	live := l.h[:0]
	for _, e := range l.h {
		if f, ok := a.Lookup(e.id); ok && f.LastAccess == e.last {
			live = append(live, e)
		}
	}
	l.h = live
	l.h.init()
}

// Adopt implements Adopter: seed one current entry per resident so a freshly
// installed LRU ranks the existing cache contents by their true recency.
func (l *LRU) Adopt(a *codecache.Arena) {
	a.Visit(func(f *codecache.Fragment) bool {
		l.h.push(lruEntry{id: f.ID, last: f.LastAccess})
		return true
	})
}

// Insert implements Local.
func (l *LRU) Insert(a *codecache.Arena, f codecache.Fragment, onEvict func(codecache.Fragment)) error {
	if f.Size > a.Capacity() {
		return codecache.ErrTooBig
	}
	for {
		err := a.PlaceFirstFit(f)
		if err == nil {
			l.h.push(lruEntry{id: f.ID, last: a.Clock()})
			return nil
		}
		if !errors.Is(err, codecache.ErrNoSpace) {
			return err
		}
		victim, ok := l.victim(a)
		if !ok {
			return codecache.ErrNoSpace
		}
		v, derr := a.Delete(victim, false)
		if derr != nil {
			continue // raced with staleness; try the next candidate
		}
		if onEvict != nil {
			onEvict(v)
		}
	}
}

// victim pops heap entries until one matches a live, evictable fragment
// whose recorded recency is current. Entries whose fragments are merely
// pinned or process-referenced right now are held aside and re-pushed before
// returning: the pin may be lifted later, and a discarded entry would leave
// the fragment invisible to the heap — exempt from eviction in its proper
// LRU slot until the heap drains and the fallback scan rediscovers it.
// Process-referenced fragments count as pinned here because Delete(id, false)
// refuses them; returning one would make Insert retry forever once only
// referenced fragments remain.
func (l *LRU) victim(a *codecache.Arena) (uint64, bool) {
	l.held = l.held[:0]
	defer func() {
		for _, e := range l.held {
			l.h.push(e)
		}
	}()
	for {
		e, ok := l.h.popMin()
		if !ok {
			// Heap exhausted; fall back to a scan (covers fragments whose
			// heap entries were all stale).
			var bestID uint64
			var bestLast uint64
			found := false
			a.Visit(func(f *codecache.Fragment) bool {
				if f.Undeletable || f.Refs > 0 {
					return true
				}
				if !found || f.LastAccess < bestLast {
					bestID, bestLast, found = f.ID, f.LastAccess, true
				}
				return true
			})
			return bestID, found
		}
		f, ok := a.Lookup(e.id)
		if !ok || f.LastAccess != e.last {
			continue // stale entry
		}
		if f.Undeletable || f.Refs > 0 {
			l.held = append(l.held, e)
			continue
		}
		return e.id, true
	}
}

// FlushWhenFull deletes every deletable fragment when an insertion fails,
// then retries. This is the bluntest policy: cheap bookkeeping, terrible
// retention.
type FlushWhenFull struct {
	// Flushes counts how many whole-cache flushes have occurred.
	Flushes uint64
	// Obs, when non-nil, receives one KindFlush event per whole-cache flush.
	Obs obs.Observer
}

// Name implements Local.
func (p *FlushWhenFull) Name() string { return "flush-when-full" }

// OnAccess implements Local.
func (p *FlushWhenFull) OnAccess(*codecache.Arena, uint64) {}

// Insert implements Local.
func (p *FlushWhenFull) Insert(a *codecache.Arena, f codecache.Fragment, onEvict func(codecache.Fragment)) error {
	if f.Size > a.Capacity() {
		return codecache.ErrTooBig
	}
	if err := a.PlaceFirstFit(f); err == nil {
		return nil
	} else if !errors.Is(err, codecache.ErrNoSpace) {
		return err
	}
	p.Flushes++
	obs.Emit(p.Obs, obs.Event{Kind: obs.KindFlush})
	a.Flush(onEvict)
	return a.PlaceFirstFit(f)
}

// PreemptiveFlush approximates Dynamo's preemptive flushing (§2): it watches
// the trace-creation rate and flushes the cache when a spike suggests a
// program phase change, on the theory that the old working set is dead. It
// also flushes when full, like FlushWhenFull.
type PreemptiveFlush struct {
	// Window is how many recent insertions the rate estimate covers.
	Window int
	// SpikeFactor is how much faster than the long-term insertion rate the
	// recent rate must be to signal a phase change.
	SpikeFactor float64

	// Flushes counts phase-change flushes; FullFlushes counts flushes
	// forced by a failed insertion.
	Flushes     uint64
	FullFlushes uint64
	// Obs, when non-nil, receives one KindFlush event per flush of either
	// kind.
	Obs obs.Observer

	recent  []uint64 // clock values of the last Window inserts
	inserts uint64
	start   uint64
	started bool
}

// NewPreemptiveFlush returns a policy with the default window (32) and
// spike factor (4).
func NewPreemptiveFlush() *PreemptiveFlush {
	return &PreemptiveFlush{Window: 32, SpikeFactor: 4}
}

// Name implements Local.
func (p *PreemptiveFlush) Name() string { return "preemptive-flush" }

// OnAccess implements Local.
func (p *PreemptiveFlush) OnAccess(*codecache.Arena, uint64) {}

// Insert implements Local.
func (p *PreemptiveFlush) Insert(a *codecache.Arena, f codecache.Fragment, onEvict func(codecache.Fragment)) error {
	if f.Size > a.Capacity() {
		return codecache.ErrTooBig
	}
	now := a.Clock()
	if !p.started {
		p.start = now
		p.started = true
	}
	p.inserts++
	p.recent = append(p.recent, now)
	if len(p.recent) > p.Window {
		p.recent = p.recent[len(p.recent)-p.Window:]
	}
	if p.phaseChange(now) {
		p.Flushes++
		obs.Emit(p.Obs, obs.Event{Kind: obs.KindFlush})
		a.Flush(onEvict)
		p.recent = p.recent[:0]
	}
	if err := a.PlaceFirstFit(f); err == nil {
		return nil
	} else if !errors.Is(err, codecache.ErrNoSpace) {
		return err
	}
	p.FullFlushes++
	obs.Emit(p.Obs, obs.Event{Kind: obs.KindFlush})
	a.Flush(onEvict)
	return a.PlaceFirstFit(f)
}

// phaseChange reports whether the recent insertion rate is SpikeFactor times
// the long-term rate.
func (p *PreemptiveFlush) phaseChange(now uint64) bool {
	if len(p.recent) < p.Window || p.inserts < uint64(2*p.Window) {
		return false
	}
	total := now - p.start
	if total == 0 {
		return false
	}
	recentSpan := now - p.recent[0]
	if recentSpan == 0 {
		recentSpan = 1
	}
	longRate := float64(p.inserts) / float64(total)
	recentRate := float64(len(p.recent)) / float64(recentSpan)
	return recentRate > p.SpikeFactor*longRate
}

// Unbounded never evicts; it is only usable with an arena whose capacity
// exceeds the workload's total trace bytes (see codecache.NewUnbounded).
type Unbounded struct{}

// Name implements Local.
func (Unbounded) Name() string { return "unbounded" }

// OnAccess implements Local.
func (Unbounded) OnAccess(*codecache.Arena, uint64) {}

// Insert implements Local.
func (Unbounded) Insert(a *codecache.Arena, f codecache.Fragment, onEvict func(codecache.Fragment)) error {
	return a.Insert(f, func(v codecache.Fragment) {
		// An unbounded cache must never evict; reaching here means the
		// arena was sized too small for the workload.
		panic("policy: unbounded cache evicted fragment")
	})
}

// CircularFirstFit is the design alternative §4.3 explicitly rejects: before
// evicting at the cursor, try to place the new trace into an existing hole
// (left by program-forced deletions). The paper argues this complicates the
// design and can hurt temporal locality; it is implemented here so the
// ablation can measure that trade-off.
type CircularFirstFit struct {
	// HoleFills counts insertions satisfied from holes without eviction.
	HoleFills uint64
}

// Name implements Local.
func (p *CircularFirstFit) Name() string { return "circular-first-fit" }

// OnAccess implements Local.
func (p *CircularFirstFit) OnAccess(*codecache.Arena, uint64) {}

// Insert implements Local.
func (p *CircularFirstFit) Insert(a *codecache.Arena, f codecache.Fragment, onEvict func(codecache.Fragment)) error {
	if err := a.PlaceFirstFit(f); err == nil {
		p.HoleFills++
		return nil
	} else if !errors.Is(err, codecache.ErrNoSpace) {
		return err
	}
	return a.Insert(f, onEvict)
}
