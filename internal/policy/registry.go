// The policy zoo: a registry of named, parameterized local policies. The
// closed set of structs in policy.go stays the implementation; the registry
// turns them into discoverable, CLI-addressable specs ("lru",
// "trrip:hot=8"), and hands out factories rather than instances — policies
// are stateful, so every tier (and every shadow copy the online selector
// races) needs its own fresh instance.
package policy

import (
	"fmt"
	"strconv"
	"strings"
)

// Factory stamps out fresh instances of one configured policy.
type Factory struct {
	spec string
	mk   func() Local
}

// Spec returns the canonical spec string ("trrip:hot=8"); parsing it again
// yields an equivalent factory. Snapshots persist it.
func (f Factory) Spec() string { return f.spec }

// New builds a fresh policy instance.
func (f Factory) New() Local { return f.mk() }

// Info describes one registered policy for discovery listings.
type Info struct {
	// Name is the canonical policy name.
	Name string
	// Aliases are dash-free short names accepted by Parse. Tier-layout
	// strings ("30@lru-70@trrip") split tiers on '-', so policies named
	// inside them must use a dash-free form.
	Aliases []string
	// Params documents the "key=default" parameters, empty when none.
	Params string
	// Desc is a one-line description.
	Desc string
}

type entry struct {
	info  Info
	build func(p *paramSet) Local
}

// Registry maps policy names (and aliases) to constructors. Registration
// order is preserved so listings are deterministic.
type Registry struct {
	entries []*entry
	byName  map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*entry)}
}

// Register adds a policy. The builder reads its parameters from the set
// (recording an error on bad values); Parse reports leftover keys as
// unknown-parameter errors.
func (r *Registry) Register(info Info, build func(p *paramSet) Local) {
	e := &entry{info: info, build: build}
	if _, dup := r.byName[info.Name]; dup {
		panic("policy: duplicate registration of " + info.Name)
	}
	r.byName[info.Name] = e
	for _, a := range info.Aliases {
		if _, dup := r.byName[a]; dup {
			panic("policy: duplicate registration of alias " + a)
		}
		r.byName[a] = e
	}
	r.entries = append(r.entries, e)
}

// List returns the registered policies in registration order.
func (r *Registry) List() []Info {
	out := make([]Info, len(r.entries))
	for i, e := range r.entries {
		out[i] = e.info
	}
	return out
}

// Describe renders the registry as a human-readable listing, one entry per
// policy with its aliases, parameters, and description. CLIs print it for
// their -policies flag, followed by the pseudo-policy "auto" they accept.
func (r *Registry) Describe() string {
	var b strings.Builder
	b.WriteString("registered local policies (specs: \"name\" or \"name:key=value,...\"):\n")
	for _, e := range r.entries {
		name := e.info.Name
		if len(e.info.Aliases) > 0 {
			name += " (" + strings.Join(e.info.Aliases, ", ") + ")"
		}
		fmt.Fprintf(&b, "  %-28s %s\n", name, e.info.Desc)
		if e.info.Params != "" {
			fmt.Fprintf(&b, "  %-28s params: %s\n", "", e.info.Params)
		}
	}
	b.WriteString("  auto[:name]                  online selection: shadow-race the candidates, switch at epoch boundaries\n")
	return b.String()
}

// Parse resolves a policy spec — "name" or "name:key=value,key=value" — into
// a factory. Names may be canonical or aliases; the returned factory's Spec
// is canonicalized to the canonical name plus the given parameters.
func (r *Registry) Parse(spec string) (Factory, error) {
	name, args, hasArgs := strings.Cut(spec, ":")
	name = strings.TrimSpace(name)
	e, ok := r.byName[name]
	if !ok {
		return Factory{}, fmt.Errorf("policy: unknown policy %q (run with -policies for the registry)", name)
	}
	ps := &paramSet{m: make(map[string]string)}
	if hasArgs {
		for _, kv := range strings.Split(args, ",") {
			k, v, ok := strings.Cut(kv, "=")
			k, v = strings.TrimSpace(k), strings.TrimSpace(v)
			if !ok || k == "" || v == "" {
				return Factory{}, fmt.Errorf("policy: %s: bad parameter %q (want key=value)", e.info.Name, kv)
			}
			if _, dup := ps.m[k]; dup {
				return Factory{}, fmt.Errorf("policy: %s: parameter %q given twice", e.info.Name, k)
			}
			ps.m[k] = v
		}
	}
	// Probe-build once to surface parameter errors eagerly; the factory then
	// rebuilds per instance (builders must be deterministic).
	if e.build(ps); ps.err != nil {
		return Factory{}, fmt.Errorf("policy: %s: %w", e.info.Name, ps.err)
	}
	if len(ps.m) > 0 {
		for k := range ps.m {
			if !ps.used[k] {
				return Factory{}, fmt.Errorf("policy: %s: unknown parameter %q (params: %s)", e.info.Name, k, e.info.Params)
			}
		}
	}
	canon := e.info.Name
	if hasArgs && args != "" {
		canon += ":" + args
	}
	return Factory{spec: canon, mk: func() Local {
		return e.build(&paramSet{m: ps.m})
	}}, nil
}

// paramSet is the typed accessor builders read their parameters through.
type paramSet struct {
	m    map[string]string
	used map[string]bool
	err  error
}

func (p *paramSet) lookup(key string) (string, bool) {
	v, ok := p.m[key]
	if ok {
		if p.used == nil {
			p.used = make(map[string]bool)
		}
		p.used[key] = true
	}
	return v, ok
}

// uint reads an unsigned parameter, or its default when absent.
func (p *paramSet) uint(key string, def uint64) uint64 {
	v, ok := p.lookup(key)
	if !ok {
		return def
	}
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil && p.err == nil {
		p.err = fmt.Errorf("parameter %s=%q: want an unsigned integer", key, v)
	}
	return n
}

// float reads a float parameter, or its default when absent.
func (p *paramSet) float(key string, def float64) float64 {
	v, ok := p.lookup(key)
	if !ok {
		return def
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil && p.err == nil {
		p.err = fmt.Errorf("parameter %s=%q: want a number", key, v)
	}
	return f
}

// Default is the process-wide registry holding every built-in policy.
var Default = NewRegistry()

// Parse resolves a policy spec against the default registry.
func Parse(spec string) (Factory, error) { return Default.Parse(spec) }

// List returns the default registry's policies in registration order.
func List() []Info { return Default.List() }

// Describe renders the default registry's -policies listing.
func Describe() string { return Default.Describe() }

func init() {
	Default.Register(Info{
		Name:    "pseudo-circular",
		Aliases: []string{"circ"},
		Desc:    "the paper's §4.3 circular sweep with undeletable-fragment resets (stock policy)",
	}, func(*paramSet) Local { return PseudoCircular{} })

	Default.Register(Info{
		Name: "lru",
		Desc: "evict the least-recently-executed trace first (heap-backed, lazily compacted)",
	}, func(*paramSet) Local { return NewLRU() })

	Default.Register(Info{
		Name:   "trrip",
		Params: "max=7, cold=6, warm=4, hot=2",
		Desc:   "re-reference interval prediction seeded from trace heat at insert (TRRIP-style)",
	}, func(p *paramSet) Local { return newTRRIPFrom(p) })

	Default.Register(Info{
		Name:    "flush-when-full",
		Aliases: []string{"flush"},
		Desc:    "flush every deletable trace when an insertion does not fit",
	}, func(*paramSet) Local { return &FlushWhenFull{} })

	Default.Register(Info{
		Name:    "preemptive-flush",
		Aliases: []string{"preflush"},
		Params:  "window=32, spike=4",
		Desc:    "Dynamo's scheme: flush on trace-creation-rate spikes (phase changes) and when full",
	}, func(p *paramSet) Local {
		return &PreemptiveFlush{
			Window:      int(p.uint("window", 32)),
			SpikeFactor: p.float("spike", 4),
		}
	})

	Default.Register(Info{
		Name:    "circular-first-fit",
		Aliases: []string{"cff"},
		Desc:    "fill program-forced holes first, then fall back to the circular sweep",
	}, func(*paramSet) Local { return &CircularFirstFit{} })
}
