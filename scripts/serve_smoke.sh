#!/bin/sh
# serve-smoke: end-to-end exercise of the gencached service under the race
# detector. Starts the daemon on an ephemeral port, drives it with the
# bundled loadtest client (overload check + 8 concurrent verified sessions),
# shuts it down with SIGTERM, asserts a snapshot was written, then restarts
# over the snapshot and requires the second round to warm-start and adopt.
set -eu

work=$(mktemp -d /tmp/serve-smoke.XXXXXX)
pid=""
cleanup() {
    if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
        kill "$pid" 2>/dev/null || true
        wait "$pid" 2>/dev/null || true
    fi
    rm -rf "$work"
}
trap cleanup EXIT INT TERM

echo "serve-smoke: building gencached (-race)"
go build -race -o "$work/gencached" ./cmd/gencached

start_daemon() {
    rm -f "$work/addr"
    "$work/gencached" serve \
        -addr 127.0.0.1:0 -addr-file "$work/addr" \
        -snapshot "$work/tier.ccpersist" \
        -max-sessions 4 -queue 2 >"$work/$1.log" 2>&1 &
    pid=$!
    # Wait for the daemon to bind and publish its address.
    i=0
    while [ ! -s "$work/addr" ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ] || ! kill -0 "$pid" 2>/dev/null; then
            echo "serve-smoke: daemon never published its address" >&2
            cat "$work/$1.log" >&2
            exit 1
        fi
        sleep 0.1
    done
    addr="http://$(cat "$work/addr")"
}

stop_daemon() {
    kill -TERM "$pid"
    if ! wait "$pid"; then
        echo "serve-smoke: daemon exited non-zero" >&2
        cat "$work/$1.log" >&2
        exit 1
    fi
    pid=""
    grep -q "clean shutdown" "$work/$1.log" || {
        echo "serve-smoke: daemon log missing clean-shutdown marker" >&2
        cat "$work/$1.log" >&2
        exit 1
    }
}

start_daemon cold
echo "serve-smoke: daemon on $addr (pid $pid)"

# Overload first (hold = slots + queue saturates the 4+2 server), then eight
# concurrent clients whose results are each verified bit-identical against an
# offline replay of the same log.
"$work/gencached" loadtest -addr "$addr" \
    -overload-hold 6 \
    -clients 8 -sessions 8 -bench word,gzip -scale 0.03 -min-sessions 8

stop_daemon cold
test -s "$work/tier.ccpersist" || { echo "serve-smoke: no snapshot written" >&2; exit 1; }
test -s "$work/tier.ccpersist.modules.json" || { echo "serve-smoke: no module sidecar written" >&2; exit 1; }

start_daemon warm
echo "serve-smoke: restarted on $addr (pid $pid)"
grep -q "warm start" "$work/warm.log" || {
    echo "serve-smoke: restart did not warm-start from the snapshot" >&2
    cat "$work/warm.log" >&2
    exit 1
}

# The warm round must restore traces from the snapshot and adopt them.
"$work/gencached" loadtest -addr "$addr" \
    -clients 4 -sessions 4 -bench word,gzip -scale 0.03 -min-sessions 4 -expect-warm

stop_daemon warm
echo "serve-smoke: PASS"
