#!/bin/sh
# Runs the served-ingest benchmark pair (per-event path vs. batched block
# kernel, see bench_serve_test.go) and records events/sec/core in
# BENCH_serve.json, the acceptance artifact for the batched replay kernel.
#
# Each benchmark runs `count` times and the best (highest events/sec) run is
# recorded, damping scheduler noise. The core matrix runs the Parallel
# variants at 1, 4, and 16 cores where the host has them; missing core
# counts are recorded as "n/a" so the artifact is honest about the host.
#
# Usage: scripts/bench_serve.sh [count]   (default 3)
set -eu

COUNT="${1:-3}"
OUT=BENCH_serve.json
RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT
NPROC=$(nproc 2>/dev/null || echo 1)

go test -run '^$' -bench 'ServeIngest(Step|Block)$' \
  -benchmem -benchtime 2s -count "$COUNT" . | tee "$RAW"

for c in 4 16; do
    if [ "$NPROC" -ge "$c" ]; then
        go test -run '^$' -bench 'ServeIngest(Step|Block)Parallel$' \
          -cpu "$c" -benchtime 2s -count "$COUNT" . | tee -a "$RAW"
    fi
done

# Parse `go test -bench` lines, keeping the best run per benchmark:
#   BenchmarkServeIngestStep   199   14310870 ns/op   29.42 MB/s   7216617 events/sec
awk -v out="$OUT" -v nproc="$NPROC" '
/^Benchmark/ {
    name = $1
    cores = 1
    if (match(name, /-[0-9]+$/)) {
        cores = substr(name, RSTART + 1) + 0
        name = substr(name, 1, RSTART - 1)
    }
    sub(/^BenchmarkServeIngest/, "", name)
    sub(/Parallel$/, "", name)
    key = name "@" cores
    eps = ""
    for (i = 2; i < NF; i++) if ($(i+1) == "events/sec") eps = $i
    if (eps == "") next
    if (!(key in best) || eps + 0 > best[key] + 0) best[key] = eps
}
END {
    printf "{\n" > out
    printf "  \"host_cores\": %d,\n", nproc >> out
    printf "  \"workload\": \"v2 multi-process served log: 4 procs, 103k events, 99%% hot-set accesses, module unmap churn, capfrac 0.5 (see bench_serve_test.go)\",\n" >> out
    printf "  \"before_per_event_path\": {\"events_per_sec_per_core\": %.0f},\n", best["Step@1"] >> out
    printf "  \"after_block_kernel\": {\"events_per_sec_per_core\": %.0f},\n", best["Block@1"] >> out
    printf "  \"speedup_events_per_sec_per_core\": %.2f,\n", best["Block@1"] / best["Step@1"] >> out
    printf "  \"core_matrix\": {\n" >> out
    ncores = split("1 4 16", want, " ")
    for (i = 1; i <= ncores; i++) {
        c = want[i]
        printf "    \"%s\": ", c >> out
        sk = "Step@" c; bk = "Block@" c
        if ((sk in best) && (bk in best)) {
            printf "{\"step_events_per_sec_per_core\": %.0f, \"block_events_per_sec_per_core\": %.0f, \"speedup\": %.2f}", \
                best[sk] / c, best[bk] / c, best[bk] / best[sk] >> out
        } else {
            printf "\"n/a (host has %d core%s)\"", nproc, (nproc == 1 ? "" : "s") >> out
        }
        printf "%s\n", (i < ncores ? "," : "") >> out
    }
    printf "  }\n}\n" >> out
}
' "$RAW"

echo "wrote $OUT"
