#!/bin/sh
# Runs the hot-path benchmark suite and records the results in
# BENCH_hotpath.json, the repo's tracked performance trajectory. Each
# benchmark runs `count` times and the best (lowest ns/op) run is recorded,
# damping scheduler noise. Run from the repo root on a quiet machine; commit
# the JSON when the numbers move for a reason.
#
# Usage: scripts/bench.sh [count]   (default 3)
set -eu

COUNT="${1:-3}"
OUT=BENCH_hotpath.json
RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

go test -run '^$' \
  -bench 'DispatchSteadyState|ArenaChurn|ArenaInsertEvict|ArenaAccess|ReplayObserver|ObserverEmit|^BenchmarkReplay$|^BenchmarkEngineRun$' \
  -benchmem -count "$COUNT" . | tee "$RAW"

# Parse `go test -bench` lines, keeping the best run per benchmark:
#   BenchmarkName-8   1234567   95.89 ns/op   2 B/op   0 allocs/op
awk -v out="$OUT" '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    sub(/^Benchmark/, "", name)
    n_ns = ""; n_b = ""; n_a = ""
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op")     n_ns = $i
        if ($(i+1) == "B/op")      n_b  = $i
        if ($(i+1) == "allocs/op") n_a  = $i
    }
    if (n_ns == "") next
    if (!(name in ns) || n_ns + 0 < ns[name] + 0) {
        ns[name] = n_ns; bytes[name] = n_b; allocs[name] = n_a
    }
    if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
}
END {
    printf "{\n" > out
    # Seed-commit numbers (pre-optimization, commit 836dce4, same machine):
    # the dispatch benchmarks did not exist yet, so DispatchSteadyStateSlow
    # below doubles as the map-dispatch baseline.
    printf "  \"before\": {\n" >> out
    printf "    \"commit\": \"836dce4\",\n" >> out
    printf "    \"ArenaInsertEvict\": {\"ns_per_op\": 249.3, \"bytes_per_op\": 111, \"allocs_per_op\": 1},\n" >> out
    printf "    \"ArenaAccess\": {\"ns_per_op\": 10.52, \"bytes_per_op\": 0, \"allocs_per_op\": 0},\n" >> out
    printf "    \"Replay\": {\"ns_per_op\": 11510000, \"allocs_per_op\": 101303},\n" >> out
    printf "    \"EngineRun\": {\"ns_per_op\": 22990000, \"allocs_per_op\": 7865}\n" >> out
    printf "  },\n" >> out
    printf "  \"after\": {\n" >> out
    for (i = 1; i <= n; i++) {
        name = order[i]
        printf "    \"%s\": {\"ns_per_op\": %s", name, ns[name] >> out
        if (bytes[name]  != "") printf ", \"bytes_per_op\": %s", bytes[name] >> out
        if (allocs[name] != "") printf ", \"allocs_per_op\": %s", allocs[name] >> out
        printf "}%s\n", (i < n ? "," : "") >> out
    }
    printf "  }" >> out
    if (("DispatchSteadyState" in ns) && ("DispatchSteadyStateSlow" in ns) && ns["DispatchSteadyState"] + 0 > 0) {
        printf ",\n  \"dispatch_speedup_fast_vs_slow\": %.2f", ns["DispatchSteadyStateSlow"] / ns["DispatchSteadyState"] >> out
    }
    printf "\n}\n" >> out
}
' "$RAW"

echo "wrote $OUT"
