#!/bin/sh
# Tier-1 gate (same as `make ci`): vet, build, and the full test suite under
# the race detector. The experiment pipeline runs replays on a worker pool,
# so -race is part of the gate, not an optional extra.
set -eux

# Formatting gate: gofmt -l prints offending files; any output fails the CI.
fmt_out=$(gofmt -l .)
if [ -n "$fmt_out" ]; then
    echo "gofmt: files need formatting:" >&2
    echo "$fmt_out" >&2
    exit 1
fi

go vet ./...
go build ./...
go test -race ./...
# Benchmark smoke run: one iteration of everything, so benchmarks can't rot.
go test -run '^$' -bench . -benchtime 1x .
# Served-ingest smoke: the block-kernel acceptance pair plus its equivalence
# anchor (block path == per-event path, counter for counter).
make serve-bench-smoke
# Short fuzz run over the tracelog decoder: seeds the corpus and catches
# regressions in the malformed-input hardening without a long fuzz budget.
go test ./internal/tracelog -run '^$' -fuzz FuzzReader -fuzztime 10s
# Policy-selection smoke: the online selector must actually switch, under the
# race detector, on a log whose best static policy differs from its starting
# one.
make policyselect-smoke
# Virtual-time gate: nothing on the virtual-clock plane may touch the wall
# clock. simclock/real.go is the single allowed call site (the Real clock);
# everything else must go through an injected simclock.Clock, or a virtual
# production day stops being bit-reproducible.
leaks=$(grep -rn 'time\.Now(\|time\.Since(\|time\.Sleep(\|time\.After(' \
    internal/server internal/core internal/dayload internal/workload \
    internal/simclock internal/sim internal/dbt internal/cluster \
    --include='*.go' \
    | grep -v _test.go | grep -v 'simclock/real.go' || true)
if [ -n "$leaks" ]; then
    echo "wall-clock calls on the virtual-time plane:" >&2
    echo "$leaks" >&2
    exit 1
fi
# Production-day smoke: the compressed diurnal day under the race detector —
# at least one admission resize, zero verification failures, schema-stable
# timeline CSV.
make prodday-smoke
# Attribution smoke: the trace-lifecycle ledger's "why" report must conserve
# exactly (causes sum to regenerations) and attribute a nonzero share of
# middle-tier deaths to premature demotion, under the race detector.
make attrib-smoke
# Attribution endpoint fuzz: a short run over the /v1/attrib query parser —
# seeds the corpus, catches panics and half-validated filters.
go test ./internal/server -run '^$' -fuzz FuzzAttribQuery -fuzztime 10s
# Trace-exchange wire fuzz: a short run over every exchange message codec —
# decoders must reject malformed frames and round-trip well-formed ones.
go test ./internal/cluster -run '^$' -fuzz FuzzWire -fuzztime 10s
# Cluster smoke: a 3-node distributed shared tier vs isolated nodes, under
# the race detector — at least one cross-node adoption, zero verification
# failures, deterministic across a double run.
make cluster-smoke
