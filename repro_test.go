package repro_test

import (
	"bytes"
	"testing"

	"repro"
)

// TestPublicAPIEndToEnd drives the whole facade: synthesize, run under the
// engine with a log, replay under both managers, compare.
func TestPublicAPIEndToEnd(t *testing.T) {
	profile, ok := repro.BenchmarkByName("solitaire")
	if !ok {
		t.Fatal("solitaire missing")
	}
	profile = profile.Scaled(0.05)

	bench, err := repro.Synthesize(profile)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w, err := repro.NewLogWriter(&buf, profile.Name, profile.DurationMicros())
	if err != nil {
		t.Fatal(err)
	}
	lt := repro.NewLifetimes()
	engine, err := repro.NewEngine(bench.Image, repro.EngineConfig{
		Manager:   repro.NewUnified(1<<40, nil),
		Log:       w,
		Lifetimes: lt,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := engine.Run(bench.NewDriver(), 0); err != nil {
		t.Fatal(err)
	}
	s := engine.Stats()
	if s.TracesCreated == 0 || s.Accesses == 0 {
		t.Fatalf("stats = %+v", s)
	}
	if lt.Len() != int(s.TracesCreated) {
		t.Errorf("lifetimes %d != traces %d", lt.Len(), s.TracesCreated)
	}

	name, events, err := repro.ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if name != "solitaire" {
		t.Errorf("log benchmark = %q", name)
	}
	peak := repro.UnboundedPeak(events)
	if peak == 0 {
		t.Fatal("no unbounded peak")
	}

	capacity := peak / 2
	cmp, err := repro.Compare(name, events, capacity, repro.BestLayout(capacity))
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Unified.Misses == 0 {
		t.Fatal("no unified misses at half capacity")
	}
	if cmp.MissRateReduction() <= 0 {
		t.Errorf("miss-rate reduction = %v, want positive on solitaire", cmp.MissRateReduction())
	}
	if cmp.MissesEliminated() <= 0 {
		t.Errorf("misses eliminated = %d", cmp.MissesEliminated())
	}
	if r := cmp.OverheadRatio(); r <= 0 || r > 2 {
		t.Errorf("overhead ratio = %v", r)
	}
}

// TestPublicAPIManagers covers the manager constructors and policies.
func TestPublicAPIManagers(t *testing.T) {
	u := repro.NewUnified(1000, nil)
	if err := u.Insert(repro.Fragment{ID: 1, Size: 100}); err != nil {
		t.Fatal(err)
	}
	if !u.Access(1) || u.Access(2) {
		t.Error("unified access wrong")
	}

	for _, p := range []repro.LocalPolicy{
		repro.PseudoCircularPolicy(),
		repro.LRUPolicy(),
		repro.FlushWhenFullPolicy(),
		repro.PreemptiveFlushPolicy(),
	} {
		m := repro.NewUnifiedWithPolicy(500, p, nil)
		for id := uint64(1); id <= 10; id++ {
			if err := m.Insert(repro.Fragment{ID: id, Size: 100}); err != nil {
				t.Fatalf("%s: %v", p.Name(), err)
			}
		}
		if m.Used() > m.Capacity() {
			t.Errorf("%s: used %d > capacity %d", p.Name(), m.Used(), m.Capacity())
		}
	}

	g, err := repro.NewGenerational(repro.BestLayout(1000), nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.Capacity() != 1000 {
		t.Errorf("capacity = %d", g.Capacity())
	}
	if _, err := repro.NewGenerational(repro.GenerationalConfig{}, nil); err == nil {
		t.Error("zero config accepted")
	}
}

// TestPublicAPIInterpreter covers the VM path through the facade.
func TestPublicAPIInterpreter(t *testing.T) {
	profile, _ := repro.BenchmarkByName("art")
	bench, err := repro.Synthesize(profile.Scaled(0.05))
	if err != nil {
		t.Fatal(err)
	}
	// The synthetic images are driver-driven, but the interpreter must at
	// least be constructible on them and able to report its image.
	m := repro.NewInterpreter(bench.Image)
	if m.Image() != bench.Image {
		t.Error("interpreter image mismatch")
	}
	g := repro.VMGuest(m)
	if g.Image() != bench.Image {
		t.Error("guest image mismatch")
	}
}

// TestPublicAPIBenchmarkTable sanity-checks the exported benchmark list.
func TestPublicAPIBenchmarkTable(t *testing.T) {
	all := repro.Benchmarks()
	if len(all) != 32 {
		t.Fatalf("benchmarks = %d, want 32", len(all))
	}
	if _, ok := repro.BenchmarkByName("word"); !ok {
		t.Error("word missing")
	}
	if repro.DefaultCostModel.TraceGen(242) < 69000 {
		t.Error("cost model wrong")
	}
}

// TestReplayWith exercises the generic replay hook wiring.
func TestReplayWith(t *testing.T) {
	events := []repro.Event{
		{Kind: 1, Time: 1, Trace: 1, Size: 100},
		{Kind: 2, Time: 2, Trace: 1},
		{Kind: 6, Time: 3},
	}
	res, err := repro.ReplayWith("x", events, func(h repro.Observer) repro.Manager {
		return repro.NewUnified(1000, h)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Hits != 1 || res.Misses != 0 {
		t.Errorf("result = %+v", res)
	}
}
