package repro_test

import (
	"bytes"
	"fmt"
	"log"

	"repro"
)

// Example runs the paper's methodology end to end on the smallest
// interactive benchmark: one unbounded engine run captures the cache-event
// log, and the log replays under a unified cache and the paper's best
// generational layout at half the unbounded footprint.
func Example() {
	profile, _ := repro.BenchmarkByName("solitaire")
	profile = profile.Scaled(0.05)
	profile.Seed = 210 // deterministic

	bench, err := repro.Synthesize(profile)
	if err != nil {
		log.Fatal(err)
	}

	var buf bytes.Buffer
	w, err := repro.NewLogWriter(&buf, profile.Name, profile.DurationMicros())
	if err != nil {
		log.Fatal(err)
	}
	engine, err := repro.NewEngine(bench.Image, repro.EngineConfig{
		Manager: repro.NewUnified(1<<40, nil),
		Log:     w,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := engine.Run(bench.NewDriver(), 0); err != nil {
		log.Fatal(err)
	}

	_, events, err := repro.ReadLog(&buf)
	if err != nil {
		log.Fatal(err)
	}
	capacity := repro.UnboundedPeak(events) / 2
	cmp, err := repro.Compare(profile.Name, events, capacity, repro.BestLayout(capacity))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("generational beats unified: %v\n", cmp.MissesEliminated() > 0)
	fmt.Printf("overhead ratio below 100%%:  %v\n", cmp.OverheadRatio() < 1)
	// Output:
	// generational beats unified: true
	// overhead ratio below 100%:  true
}
