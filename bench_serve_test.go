// Served-ingest benchmarks: the decode→replay pipeline of a gencached
// session, measured from wire bytes to final counters in the service's
// default mode (capfrac: the cache is sized from the log's unbounded peak,
// so the body is consumed in full before the replay finishes). Two
// implementations of the same computation are compared:
//
//   - Step: the pre-kernel served path, reproduced faithfully from the old
//     session handler — tracelog.ReadAll materializes the whole log as an
//     []Event (decoding through the per-event Reader.Next), Summarize
//     re-scans it to size the cache, and a per-event session wrapper
//     replays it: a Result snapshot before and after every access (the old
//     shared-tier interplay), a duplicate identity map, and a replay
//     progress observer attached whether or not anyone listens.
//   - Block: the batched kernel the server now runs — Reader.NextBlock into
//     pooled struct-of-arrays blocks, the incremental Summarizer folding
//     each block as it decodes, Replayer.StepBlock draining access runs
//     through the manager's batched entry point, shared-tier interplay via
//     sim.Hooks.
//
// TestServePathsAgree pins both to the same counters, so the benchmarks
// compare two shapes of one computation. scripts/bench_serve.sh runs them
// across a core matrix and records events/sec/core in BENCH_serve.json; the
// Parallel variants model concurrent sessions (one private replay per
// goroutine, as in the server).
package repro_test

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/tracelog"
)

// serveCapFrac is the service's default capacity fraction (the paper's
// operating point), applied by both measured paths exactly as the session
// handler applies it.
const serveCapFrac = 0.5

// buildServeLog writes a served-workload log in the version-2 multi-process
// framing the service's real clients produce: a hot working set that stays
// resident (the paper's server workloads re-execute a small core of traces),
// a cold tail that churns, and periodic module unmaps that force deletions.
// Returns the encoded bytes and the event count.
func buildServeLog(tb testing.TB) ([]byte, int) {
	tb.Helper()
	rng := rand.New(rand.NewSource(42))
	var buf bytes.Buffer
	const procs = 4
	w, err := tracelog.NewWriter(&buf, tracelog.Header{Benchmark: "serve-bench", DurationMicros: 1000, Procs: procs})
	if err != nil {
		tb.Fatal(err)
	}
	var clock uint64
	nEvents := 0
	emit := func(e tracelog.Event) {
		clock++
		e.Time = clock
		e.Proc = nEvents % procs
		if err := w.Write(e); err != nil {
			tb.Fatal(err)
		}
		nEvents++
	}
	const nMods = 8
	nextID := uint64(1)
	var live []uint64
	modOf := make(map[uint64]uint16)
	create := func(mod uint16) {
		id := nextID
		nextID++
		size := uint32(128 + rng.Intn(384))
		emit(tracelog.Event{Kind: tracelog.KindCreate, Trace: id, Size: size, Module: mod, Head: 0x1000 * id})
		live = append(live, id)
		modOf[id] = mod
	}
	// Module 0 holds the hot working set and is never unmapped; the cold
	// tail spreads over the remaining modules.
	const hotSet = 64
	for i := 0; i < hotSet; i++ {
		create(0)
	}
	for i := 0; i < 56*nMods; i++ {
		create(uint16(1 + i%(nMods-1)))
	}
	for r := 0; r < 400; r++ {
		for k := 0; k < 256; k++ {
			var id uint64
			if rng.Intn(100) > 0 {
				id = live[rng.Intn(hotSet)] // hot core: ~99% of accesses
			} else {
				id = live[rng.Intn(len(live))]
			}
			emit(tracelog.Event{Kind: tracelog.KindAccess, Trace: id})
		}
		if r%37 == 17 {
			mod := uint16(1 + rng.Intn(nMods-1))
			emit(tracelog.Event{Kind: tracelog.KindUnmap, Module: mod})
			kept := live[:0]
			for _, id := range live {
				if modOf[id] != mod {
					kept = append(kept, id)
				}
			}
			live = kept
			for i := 0; i < 32; i++ {
				create(mod)
			}
		}
	}
	emit(tracelog.Event{Kind: tracelog.KindEnd})
	if err := w.Flush(); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes(), nEvents
}

// serveMgr builds the session's default manager shape (generational,
// 45-10-45, promote on access) over the given capacity, with an extra
// observer standing in for the server's counter/policy/session observer
// chain — both paths carry it, as both the old and new handlers do.
func serveMgr(tb testing.TB, capacity uint64, acc *costmodel.Accum, extra obs.Observer) core.Manager {
	tb.Helper()
	mgr, err := core.NewGenerational(core.Config{
		TotalCapacity: capacity,
		NurseryFrac:   0.45, ProbationFrac: 0.10, PersistentFrac: 0.45,
		PromoteThreshold: 1, PromoteOnAccess: true,
	}, obs.Combine(sim.CostObserver(acc), extra))
	if err != nil {
		tb.Fatal(err)
	}
	return mgr
}

// netReader strips the bytes.Reader down to a plain io.Reader, so NewReader
// wraps it in bufio exactly as it does a network body.
type netReader struct{ r *bytes.Reader }

func (n netReader) Read(p []byte) (int, error) { return n.r.Read(p) }

// oldLocalTrace mirrors the deleted sessionRun identity record.
type oldLocalTrace struct {
	size   uint32
	module uint16
	head   uint64
}

// stubObserver stands in for one server-side observer.
func stubObserver() obs.Observer { return obs.Func(func(obs.Event) {}) }

// stubChain mirrors the manager observer chain both session handlers attach
// (event counter, policy tracker, session observer) with equal-cost stubs.
func stubChain() obs.Observer {
	return obs.Combine(stubObserver(), stubObserver(), stubObserver())
}

// replayStepPath reproduces the pre-kernel served ingest path over one log:
// ReadAll, Summarize, then the old per-event session loop.
func replayStepPath(tb testing.TB, data []byte) (sim.Result, uint64) {
	tb.Helper()
	h, events, err := tracelog.ReadAll(netReader{bytes.NewReader(data)})
	if err != nil {
		tb.Fatal(err)
	}
	sum := tracelog.Summarize(h, events)
	capacity := uint64(float64(sum.MaxLiveBytes) * serveCapFrac)
	acc := costmodel.NewAccum(costmodel.DefaultModel)
	mgr := serveMgr(tb, capacity, acc, stubChain())
	// The old path attached the session's observer to replay progress
	// unconditionally, events mode or not.
	rep := sim.NewReplayer(h.Benchmark, mgr, acc, stubObserver())
	rep.SetTotal(uint64(len(events)))
	local := make(map[uint64]oldLocalTrace)
	adoptProbes := 0
	step := func(e tracelog.Event) error {
		switch e.Kind {
		case tracelog.KindCreate, tracelog.KindAdopt:
			local[e.Trace] = oldLocalTrace{size: e.Size, module: e.Module, head: e.Head}
			adoptProbes++ // tryAdopt stub: the shared-tier probe
		case tracelog.KindAccess:
			before := rep.Result().Regenerations
			if err := rep.Step(e); err != nil {
				return err
			}
			if rep.Result().Regenerations > before {
				if lt, ok := local[e.Trace]; ok {
					_ = lt
					adoptProbes++
				}
			}
			return nil
		}
		return rep.Step(e)
	}
	for _, e := range events {
		if err := step(e); err != nil {
			tb.Fatal(err)
		}
	}
	return rep.Finish(), capacity
}

// benchHooks stands in for the server's shared-tier interplay: the kernel
// pays the interface dispatch at the same callout points.
type benchHooks struct{ registered, regenerated, unmapped int }

func (h *benchHooks) Registered(uint64, uint32, uint16, uint64)  { h.registered++ }
func (h *benchHooks) Regenerated(uint64, uint32, uint16, uint64) { h.regenerated++ }
func (h *benchHooks) Unmapped(uint16)                            { h.unmapped++ }

// replayBlockPath is the batched kernel over the same log: the loop the
// server's unified session path runs in capfrac mode — decode into pooled
// blocks once, summarizing incrementally, then replay the retained blocks.
func replayBlockPath(tb testing.TB, data []byte) (sim.Result, uint64) {
	tb.Helper()
	lr, err := tracelog.NewReader(netReader{bytes.NewReader(data)})
	if err != nil {
		tb.Fatal(err)
	}
	z := tracelog.NewSummarizer(lr.Header())
	var blocks []*tracelog.EventBlock
	defer func() {
		for _, b := range blocks {
			tracelog.PutBlock(b)
		}
	}()
	total := 0
	for {
		b := tracelog.GetBlock()
		derr := lr.NextBlock(b)
		z.AddBlock(b)
		total += b.N
		blocks = append(blocks, b)
		if errors.Is(derr, io.EOF) {
			break
		}
		if derr != nil {
			tb.Fatal(derr)
		}
	}
	capacity := uint64(float64(z.Summary().MaxLiveBytes) * serveCapFrac)
	acc := costmodel.NewAccum(costmodel.DefaultModel)
	mgr := serveMgr(tb, capacity, acc, stubChain())
	rep := sim.NewReplayer(lr.Header().Benchmark, mgr, acc, nil)
	rep.SetHooks(&benchHooks{})
	rep.SetTotal(uint64(total))
	defer rep.Recycle()
	for _, b := range blocks {
		if err := rep.StepBlock(b); err != nil {
			tb.Fatal(err)
		}
	}
	return rep.Finish(), capacity
}

// TestServePathsAgree anchors the benchmarks: both measured paths size the
// same cache and produce the same result on the bench log, so the
// comparison is between two implementations of the same computation.
func TestServePathsAgree(t *testing.T) {
	data, _ := buildServeLog(t)
	a, capA := replayStepPath(t, data)
	b, capB := replayBlockPath(t, data)
	if capA != capB {
		t.Fatalf("capacities diverge: step %d, block %d", capA, capB)
	}
	if a.Accesses != b.Accesses || a.Hits != b.Hits || a.Misses != b.Misses ||
		a.ColdCreates != b.ColdCreates || a.Regenerations != b.Regenerations ||
		a.ForcedDeletes != b.ForcedDeletes || a.Overhead.Total() != b.Overhead.Total() {
		t.Errorf("paths diverge:\n  step:  %+v\n  block: %+v", a, b)
	}
	t.Logf("bench workload: %d accesses, miss rate %.2f%%, capacity %d",
		b.Accesses, 100*b.MissRate(), capB)
}

// BenchmarkServeIngestStep is the pre-kernel served path: events/sec here
// is the "before" of BENCH_serve.json.
func BenchmarkServeIngestStep(b *testing.B) {
	data, nEvents := buildServeLog(b)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		replayStepPath(b, data)
	}
	b.ReportMetric(float64(nEvents)*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkServeIngestBlock is the batched kernel: the "after".
func BenchmarkServeIngestBlock(b *testing.B) {
	data, nEvents := buildServeLog(b)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		replayBlockPath(b, data)
	}
	b.ReportMetric(float64(nEvents)*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkServeIngestStepParallel models concurrent sessions on the old
// path: every goroutine replays private sessions of the shared log bytes.
func BenchmarkServeIngestStepParallel(b *testing.B) {
	data, nEvents := buildServeLog(b)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			replayStepPath(b, data)
		}
	})
	b.ReportMetric(float64(nEvents)*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkServeIngestBlockParallel models concurrent sessions on the
// batched kernel.
func BenchmarkServeIngestBlockParallel(b *testing.B) {
	data, nEvents := buildServeLog(b)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			replayBlockPath(b, data)
		}
	})
	b.ReportMetric(float64(nEvents)*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
}
