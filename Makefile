# Tier-1 gate: everything a change must pass before it lands.
# `make ci` is what the roadmap calls the tier-1 verify, extended with the
# race detector now that the experiment pipeline runs on a worker pool.

GO ?= go

.PHONY: ci vet build test race bench

ci: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem
