# Tier-1 gate: everything a change must pass before it lands.
# `make ci` is what the roadmap calls the tier-1 verify, extended with the
# race detector now that the experiment pipeline runs on a worker pool.

GO ?= go

.PHONY: ci fmt vet build test race bench bench-smoke serve-bench serve-bench-smoke procs-smoke adaptive-smoke serve-smoke fuzz-smoke policyselect-smoke prodday-smoke attrib-smoke cluster-smoke

ci: fmt vet build race bench-smoke serve-bench-smoke

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt: files need formatting:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark run, recorded in BENCH_hotpath.json.
bench:
	scripts/bench.sh

# One iteration of every benchmark so they cannot bit-rot; part of ci.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# Full served-ingest benchmark (per-event path vs. block kernel), recorded
# in BENCH_serve.json. Run on a quiet machine.
serve-bench:
	scripts/bench_serve.sh

# One iteration of the served-ingest pair plus its equivalence anchor; part
# of ci, so the acceptance benchmark cannot bit-rot.
serve-bench-smoke:
	$(GO) test -run 'TestServePathsAgree' -bench 'ServeIngest' -benchtime 1x .

# Multi-process smoke: generate a tiny log and replay it as four processes
# over one shared persistent tier, under the race detector.
procs-smoke:
	$(GO) run ./cmd/tracegen -bench gzip -scale 0.03125 -o /tmp/procs-smoke.cclog
	$(GO) run -race ./cmd/ccsim -log /tmp/procs-smoke.cclog -procs 4
	rm -f /tmp/procs-smoke.cclog

# Service smoke: start the gencached daemon under the race detector, drive
# it with the bundled loadtest (429 overload check + 8 verified concurrent
# sessions), SIGTERM it, and round-trip the shared tier through its snapshot.
serve-smoke:
	scripts/serve_smoke.sh

# Short fuzz run over the tracelog decoder; seeds the corpus.
fuzz-smoke:
	$(GO) test ./internal/tracelog -run '^$$' -fuzz FuzzReader -fuzztime 10s

# Policy-selection smoke: replay a log whose best static policy is not the
# selector's starting one (eon favors the pseudo-circular sweep), under the
# race detector, and require that the selector actually switched.
policyselect-smoke:
	$(GO) run ./cmd/tracegen -bench eon -scale 0.05 -o /tmp/policyselect-smoke.cclog
	$(GO) run -race ./cmd/ccsim -log /tmp/policyselect-smoke.cclog -tiers 100 -policy auto -selepoch 256 | tee /tmp/policyselect-smoke.out
	grep -q 'selector: [1-9][0-9]* switches' /tmp/policyselect-smoke.out
	rm -f /tmp/policyselect-smoke.cclog /tmp/policyselect-smoke.out

# Production-day smoke: the compressed standard day (24h in ~2 virtual
# minutes: diurnal mixes, a 4am deploy, an evening flash crowd) under the
# race detector. Requires at least one admission resize, zero offline
# verification failures, the deploy and crowd visible in the event stream,
# and the timeline CSV schema unchanged.
prodday-smoke:
	$(GO) run -race ./cmd/gencached prodday -sessions 24 -parallel 2 \
		-csv /tmp/prodday-smoke.csv -ndjson /tmp/prodday-smoke.ndjson \
		| tee /tmp/prodday-smoke.out
	grep -q 'resizes=[1-9][0-9]* verify-failures=0' /tmp/prodday-smoke.out
	grep -q 'prodday: PASS' /tmp/prodday-smoke.out
	head -1 /tmp/prodday-smoke.csv | grep -qx 'hour,arrivals,admitted,rejected,completed,queued,slots,queue_cap,resizes,accesses,misses,miss_rate,adoptions,published,shared_used,mean_latency_ms,cold,capacity,premature_demotion,never_promoted,unmap_forced,adoption_miss'
	grep -q 'why: [0-9][0-9]* regenerations' /tmp/prodday-smoke.out
	grep -q 'conserved true' /tmp/prodday-smoke.out
	grep -q '"kind":"deploy"' /tmp/prodday-smoke.ndjson
	grep -q '"crowd":true' /tmp/prodday-smoke.ndjson
	rm -f /tmp/prodday-smoke.csv /tmp/prodday-smoke.ndjson /tmp/prodday-smoke.out

# Attribution smoke: replay a log with the trace-lifecycle ledger attached,
# under the race detector, and require the per-module "why" report to
# conserve exactly and to attribute a nonzero share of middle-tier deaths to
# premature demotion (gzip's probation gate reliably deletes hot traces).
attrib-smoke:
	$(GO) run ./cmd/tracegen -bench gzip -scale 0.0625 -o /tmp/attrib-smoke.cclog
	$(GO) run -race ./cmd/ccsim -log /tmp/attrib-smoke.cclog -why | tee /tmp/attrib-smoke.out
	grep -q 'conservation: [0-9][0-9]* cause counts == [0-9][0-9]* regenerations (exact)' /tmp/attrib-smoke.out
	grep -q 'premature-demotion' /tmp/attrib-smoke.out
	grep -q 'why: probation threshold' /tmp/attrib-smoke.out
	rm -f /tmp/attrib-smoke.cclog /tmp/attrib-smoke.out

# Cluster smoke: the deterministic cluster-vs-isolated study (a 3-node
# distributed shared tier over the in-process loopback transport) under the
# race detector. Requires at least one cross-node adoption, zero offline
# verification failures, a deterministic double run, and the cluster arm
# paying fewer generations than the isolated arm.
cluster-smoke:
	$(GO) run -race ./cmd/gencached cluster -sessions 12 | tee /tmp/cluster-smoke.out
	grep -q 'cross-node-adoptions=[1-9][0-9]* verify-failures=0 deterministic=true' /tmp/cluster-smoke.out
	grep -q 'cluster: PASS' /tmp/cluster-smoke.out
	rm -f /tmp/cluster-smoke.out

# Adaptive smoke: a short replay with the split controller attached, under
# the race detector, on both the stock three-tier shape and a four-tier one.
adaptive-smoke:
	$(GO) run ./cmd/tracegen -bench gzip -scale 0.0625 -o /tmp/adaptive-smoke.cclog
	$(GO) run -race ./cmd/ccsim -log /tmp/adaptive-smoke.cclog -adaptive -epoch 512
	$(GO) run -race ./cmd/ccsim -log /tmp/adaptive-smoke.cclog -tiers 30-10-20-40@1,2 -adaptive -epoch 512
	rm -f /tmp/adaptive-smoke.cclog
