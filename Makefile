# Tier-1 gate: everything a change must pass before it lands.
# `make ci` is what the roadmap calls the tier-1 verify, extended with the
# race detector now that the experiment pipeline runs on a worker pool.

GO ?= go

.PHONY: ci vet build test race bench bench-smoke

ci: vet build race bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark run, recorded in BENCH_hotpath.json.
bench:
	scripts/bench.sh

# One iteration of every benchmark so they cannot bit-rot; part of ci.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x .
