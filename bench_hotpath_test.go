// Hot-path benchmarks and allocation guards for the dispatch loop, the
// arena's insert/evict churn, and the observer emit path. scripts/bench.sh
// runs the benchmarks and records them in BENCH_hotpath.json; the Test*
// ZeroAlloc guards run in every `go test` so the zero-allocation property of
// the steady-state paths cannot regress silently.
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/codecache"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/dbt"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/program"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tracelog"
)

// hotLoops is how many independent two-block loops the dispatch benchmarks
// cycle through. Each becomes its own trace, so the steady-state sequence
// alternates between trace bodies and dispatcher entries — the mixed
// in-trace/dispatch regime a real hot guest produces — while keeping the
// head and trace tables at a realistic size (hundreds of hot traces, as in
// the paper's workloads) so map-vs-slice lookup differences show.
const hotLoops = 256

// buildHotLoopImage assembles hotLoops small loops: block A (Add; Jcc exit)
// falling through to block B (Add; Jmp A). Driving A,B,A,B,... makes A a
// backward-branch trace head and records the two-block trace [A,B].
func buildHotLoopImage(tb testing.TB) *program.Image {
	tb.Helper()
	b := program.NewBuilder()
	m := b.Module("hot", false)
	for i := 0; i < hotLoops; i++ {
		f, _ := m.Function(fmt.Sprintf("loop%d", i))
		exit := f.NewBlock()
		a := f.Block()
		f.I(isa.Inst{Op: isa.OpAdd})
		f.Jcc(isa.CondEQ, exit)
		f.Block()
		f.I(isa.Inst{Op: isa.OpAdd})
		f.Jmp(a)
		f.StartBlock(exit)
		f.Halt()
	}
	img, err := b.Build()
	if err != nil {
		tb.Fatal(err)
	}
	return img
}

// hotLoopSteps returns the warmup sequence (each loop iterated past the hot
// threshold so every trace materializes, then two full steady cycles to
// settle heads and links) and one steady cycle: A0,B0,A1,B1,... — per pair,
// one in-trace step and one dispatcher entry into the next loop's trace.
func hotLoopSteps(img *program.Image) (warm, steady []dbt.Step) {
	fns := img.Modules[0].Functions
	for i := 0; i < hotLoops; i++ {
		a, b := fns[i].Blocks[0].Addr, fns[i].Blocks[1].Addr
		for j := 0; j < 60; j++ {
			warm = append(warm, dbt.Step{Block: a}, dbt.Step{Block: b})
		}
	}
	for i := 0; i < hotLoops; i++ {
		a, b := fns[i].Blocks[0].Addr, fns[i].Blocks[1].Addr
		steady = append(steady, dbt.Step{Block: a}, dbt.Step{Block: b})
	}
	warm = append(warm, steady...)
	warm = append(warm, steady...)
	return warm, steady
}

// newHotEngine builds an engine over the loop image, warmed to steady state:
// every loop's trace exists and every cross-loop link is in place.
func newHotEngine(tb testing.TB, img *program.Image, warm []dbt.Step, slow bool) *dbt.Engine {
	tb.Helper()
	eng, err := dbt.New(img, dbt.Config{
		Manager:      core.NewUnified(1<<30, nil, nil),
		SlowDispatch: slow,
	})
	if err != nil {
		tb.Fatal(err)
	}
	for _, s := range warm {
		if err := eng.Observe(s); err != nil {
			tb.Fatal(err)
		}
	}
	return eng
}

// BenchmarkDispatchSteadyState measures the per-step cost of the warmed
// engine's fast path: dense block lookup, inline-cache/trace-table dispatch,
// in-trace stepping.
func BenchmarkDispatchSteadyState(b *testing.B) {
	img := buildHotLoopImage(b)
	warm, steady := hotLoopSteps(img)
	eng := newHotEngine(b, img, warm, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.Observe(steady[i%len(steady)]); err != nil {
			b.Fatal(err)
		}
	}
}

// newHotGraphEngine builds the same warmed engine over a three-tier graph
// with the adaptive split controller attached — the dispatch path every
// manager shares now that Unified and Generational are stock graphs, plus
// the controller's per-access sampling.
func newHotGraphEngine(tb testing.TB, img *program.Image, warm []dbt.Step) *dbt.Engine {
	tb.Helper()
	spec, err := core.ParseTierSpec("45-10-45@1", 1<<30)
	if err != nil {
		tb.Fatal(err)
	}
	spec.Adaptive = &core.AdaptiveConfig{}
	g, err := core.NewGraph(spec, nil)
	if err != nil {
		tb.Fatal(err)
	}
	eng, err := dbt.New(img, dbt.Config{Manager: g})
	if err != nil {
		tb.Fatal(err)
	}
	for _, s := range warm {
		if err := eng.Observe(s); err != nil {
			tb.Fatal(err)
		}
	}
	return eng
}

// BenchmarkDispatchGraphSteadyState is the steady-state dispatch workload
// over the adaptive three-tier graph, for comparison with the unified
// manager's number.
func BenchmarkDispatchGraphSteadyState(b *testing.B) {
	img := buildHotLoopImage(b)
	warm, steady := hotLoopSteps(img)
	eng := newHotGraphEngine(b, img, warm)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.Observe(steady[i%len(steady)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDispatchSteadyStateSlow is the same workload with SlowDispatch
// forcing the original map-based lookups — the pre-optimization baseline,
// kept measurable so the speedup stays tracked.
func BenchmarkDispatchSteadyStateSlow(b *testing.B) {
	img := buildHotLoopImage(b)
	warm, steady := hotLoopSteps(img)
	eng := newHotEngine(b, img, warm, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.Observe(steady[i%len(steady)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkArenaChurn measures steady insert/evict churn with recycled trace
// IDs: the node pool and dense ID index make this allocation-free.
func BenchmarkArenaChurn(b *testing.B) {
	a := codecache.New(1 << 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f := codecache.Fragment{ID: uint64(i%4096) + 1, Size: 1024}
		if err := a.Insert(f, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// churnLog builds a replay log with enough accesses that observer cost is
// visible next to replay bookkeeping.
func churnLog() []tracelog.Event {
	var events []tracelog.Event
	t := uint64(0)
	for id := uint64(1); id <= 256; id++ {
		t++
		events = append(events, tracelog.Event{Kind: tracelog.KindCreate, Time: t, Trace: id, Size: 256})
	}
	for round := 0; round < 40; round++ {
		for id := uint64(1); id <= 256; id++ {
			t++
			events = append(events, tracelog.Event{Kind: tracelog.KindAccess, Time: t, Trace: id})
		}
	}
	return events
}

// BenchmarkReplayObserverDetached replays with no observer attached.
func BenchmarkReplayObserverDetached(b *testing.B) {
	events := churnLog()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.ReplayUnified("bench", events, 32<<10, costmodel.DefaultModel); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(events)))
}

// BenchmarkReplayObserverAttached is the same replay with an EventCounter
// subscribed to the full manager event stream; the zero-allocation emit path
// should keep it near the detached cost.
func BenchmarkReplayObserverAttached(b *testing.B) {
	events := churnLog()
	c := stats.NewEventCounter()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.ReplayUnifiedObserved("bench", events, 32<<10, costmodel.DefaultModel, c); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(events)))
}

// BenchmarkObserverEmit measures one event through a bus into the standard
// counting consumer.
func BenchmarkObserverEmit(b *testing.B) {
	bus := obs.NewBus(stats.NewEventCounter())
	ev := obs.Event{Kind: obs.KindInsert, Trace: 7, Size: 512, To: obs.LevelNursery}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		obs.Emit(bus, ev)
	}
}

// BenchmarkObserverEmitDetached measures the nobody-listening cost: a nil
// observer is one branch.
func BenchmarkObserverEmitDetached(b *testing.B) {
	var o obs.Observer
	ev := obs.Event{Kind: obs.KindInsert, Trace: 7, Size: 512, To: obs.LevelNursery}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		obs.Emit(o, ev)
	}
}

// ---------------------------------------------------------------------------
// Allocation regression guards. These are tests, not benchmarks, so `go
// test ./...` fails if the steady-state paths start allocating again.

func TestDispatchSteadyStateZeroAlloc(t *testing.T) {
	img := buildHotLoopImage(t)
	warm, steady := hotLoopSteps(img)
	eng := newHotEngine(t, img, warm, false)
	allocs := testing.AllocsPerRun(20, func() {
		for _, s := range steady {
			if err := eng.Observe(s); err != nil {
				t.Fatal(err)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state dispatch allocated %.1f times per cycle, want 0", allocs)
	}
}

func TestDispatchGraphSteadyStateZeroAlloc(t *testing.T) {
	img := buildHotLoopImage(t)
	warm, steady := hotLoopSteps(img)
	eng := newHotGraphEngine(t, img, warm)
	allocs := testing.AllocsPerRun(20, func() {
		for _, s := range steady {
			if err := eng.Observe(s); err != nil {
				t.Fatal(err)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("tier-graph steady-state dispatch allocated %.1f times per cycle, want 0", allocs)
	}
}

func TestArenaChurnZeroAlloc(t *testing.T) {
	a := codecache.New(1 << 20)
	// Warm: fill the arena and size the dense ID index.
	next := 0
	insert := func() {
		f := codecache.Fragment{ID: uint64(next%4096) + 1, Size: 1024}
		next++
		if err := a.Insert(f, nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8192; i++ {
		insert()
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			insert()
		}
	})
	if allocs != 0 {
		t.Fatalf("arena churn allocated %.1f times per 64 inserts, want 0", allocs)
	}
}

func TestObserverEmitZeroAlloc(t *testing.T) {
	bus := obs.NewBus(stats.NewEventCounter(), stats.NewEventCounter())
	ev := obs.Event{Kind: obs.KindEvict, Trace: 3, Size: 128, From: obs.LevelProbation}
	allocs := testing.AllocsPerRun(100, func() {
		obs.Emit(bus, ev)
	})
	if allocs != 0 {
		t.Fatalf("observer emit allocated %.1f times per event, want 0", allocs)
	}
}
