// Package repro is a from-scratch reproduction of "Generational Cache
// Management of Code Traces in Dynamic Optimization Systems" (Hazelwood &
// Smith, MICRO-36, 2003).
//
// The package is a facade over the implementation:
//
//   - internal/core — the paper's contribution: unified and generational
//     (nursery / probation / persistent) code-cache managers, Figure 8's
//     promotion algorithm;
//   - internal/codecache — byte-granular cache arenas with the §4.3
//     pseudo-circular replacement sweep, undeletable traces, and
//     program-forced deletions;
//   - internal/policy — local replacement policies (pseudo-circular, LRU,
//     flush-when-full, Dynamo-style preemptive flushing, unbounded);
//   - internal/isa, internal/program, internal/vm — the synthetic guest
//     architecture: instruction set, program images with modules/DLLs, and
//     a reference interpreter;
//   - internal/bbcache, internal/trace, internal/dbt — the dynamic-
//     optimizer front end: basic-block cache, NET trace selection,
//     superblock construction with relocation, and the engine;
//   - internal/workload — calibrated synthetic stand-ins for SPEC2000 and
//     the paper's twelve interactive Windows applications;
//   - internal/tracelog, internal/sim — the verbose cache-event log and the
//     replay simulator (the paper's evaluation methodology);
//   - internal/costmodel — Table 2's instruction-overhead model;
//   - internal/experiments — regenerators for every table and figure.
//
// The typical flow mirrors the paper: synthesize a benchmark, run it once
// under an unbounded trace cache to capture the event log, then replay the
// log under the cache configurations being compared:
//
//	profile, _ := repro.BenchmarkByName("word")
//	bench, _ := repro.Synthesize(profile.Scaled(0.125))
//	... run via repro.NewEngine, capture a log, replay with repro.Compare ...
//
// See examples/ for complete programs and EXPERIMENTS.md for the
// paper-versus-measured record.
package repro
