// Persistent cache across runs: the follow-on the paper's conclusion points
// toward. Long-lived traces dominate cache value, so keep them: after a
// "first launch" of an application, snapshot the generational manager's
// persistent cache to a file; at the next launch, rebuild those traces
// against the program image and preload them — their generation cost is
// simply gone.
//
//	go run ./examples/persistcache
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro"
	"repro/internal/core"
	"repro/internal/dbt"
	"repro/internal/persist"
	"repro/internal/workload"
)

func main() {
	profile, ok := workload.ByName("winzip")
	if !ok {
		log.Fatal("benchmark missing")
	}
	p := profile.Scaled(0.0625)
	bench, err := workload.Synthesize(p)
	if err != nil {
		log.Fatal(err)
	}
	capacity := uint64(1 << 20)

	run := func(preloaded int, warm []byte) (dbt.RunStats, []byte) {
		mgr, err := core.NewGenerational(core.Layout451045Threshold1(capacity), nil)
		if err != nil {
			log.Fatal(err)
		}
		engine, err := dbt.New(bench.Image, dbt.Config{Manager: mgr})
		if err != nil {
			log.Fatal(err)
		}
		if warm != nil {
			img, err := persist.Load(bytes.NewReader(warm))
			if err != nil {
				log.Fatal(err)
			}
			traces, rejected := persist.Rebuild(img, bench.Image)
			if err := engine.Preload(traces); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("warm start: rebuilt %d persisted traces (%d rejected by validation)\n",
				len(traces), rejected)
		}
		if err := engine.Run(bench.NewDriver(), 0); err != nil {
			log.Fatal(err)
		}
		// Snapshot the persistent cache for the next launch.
		img := persist.Snapshot(p.Name, mgr, engine.TraceByID)
		var buf bytes.Buffer
		if err := persist.Save(&buf, img); err != nil {
			log.Fatal(err)
		}
		return engine.Stats(), buf.Bytes()
	}

	fmt.Printf("%s-like workload, %s total generational cache\n\n", p.Name, kb(capacity))

	cold, file := run(0, nil)
	fmt.Printf("cold run:  %5d traces generated, %6.2f M overhead-free guest instructions, %d misses\n",
		cold.TracesCreated, float64(cold.GuestInstrs)/1e6, cold.Misses)
	fmt.Printf("snapshot:  %s written\n\n", kb(uint64(len(file))))

	warm, _ := run(0, file)
	fmt.Printf("warm run:  %5d traces generated (%d fewer), %d misses\n",
		warm.TracesCreated, cold.TracesCreated-warm.TracesCreated, warm.Misses)

	model := repro.DefaultCostModel
	saved := float64(cold.TracesCreated-warm.TracesCreated) * model.TraceGen(242)
	fmt.Printf("\nestimated startup work avoided: ~%.1f M instructions of trace generation\n", saved/1e6)
}

func kb(n uint64) string { return fmt.Sprintf("%.1f KB", float64(n)/1024) }
