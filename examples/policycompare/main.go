// Policy comparison: local and global cache-management schemes head to head.
//
// One benchmark is run once under an unbounded cache to capture its event
// log (the paper's methodology); the log then replays through five
// managers of identical capacity:
//
//   - unified + pseudo-circular (the paper's baseline, §4.3)
//
//   - unified + LRU
//
//   - unified + flush-when-full
//
//   - unified + preemptive flushing (Dynamo's scheme)
//
//   - generational 45-10-45 @1 (the paper's proposal, §5), built as a
//     three-tier graph
//
//   - a four-generation graph 30-10-20-40 @1,2 — the tier-graph API is not
//     limited to the paper's three levels
//
//   - the same three-tier graph with the adaptive split controller attached
//
//     go run ./examples/policycompare [benchmark]
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	name := "gcc"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	profile, ok := repro.BenchmarkByName(name)
	if !ok {
		log.Fatalf("unknown benchmark %q", name)
	}
	profile = profile.Scaled(0.125)

	bench, err := repro.Synthesize(profile)
	if err != nil {
		log.Fatal(err)
	}

	// Unbounded run -> event log.
	var buf bytes.Buffer
	w, err := repro.NewLogWriter(&buf, profile.Name, profile.DurationMicros())
	if err != nil {
		log.Fatal(err)
	}
	engine, err := repro.NewEngine(bench.Image, repro.EngineConfig{
		Manager: repro.NewUnified(1<<40, nil),
		Log:     w,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := engine.Run(bench.NewDriver(), 0); err != nil {
		log.Fatal(err)
	}
	_, events, err := repro.ReadLog(&buf)
	if err != nil {
		log.Fatal(err)
	}

	// Capacity: half the unbounded peak, as in §6.
	peak := repro.UnboundedPeak(events)
	capacity := peak / 2
	fmt.Printf("%s: %d events, unbounded peak %.1f KB, simulated capacity %.1f KB\n\n",
		profile.Name, len(events), float64(peak)/1024, float64(capacity)/1024)

	type entry struct {
		name string
		mgr  func(repro.Observer) repro.Manager
	}
	mk := func(p func() repro.LocalPolicy) func(repro.Observer) repro.Manager {
		return func(h repro.Observer) repro.Manager {
			return repro.NewUnifiedWithPolicy(capacity, p(), h)
		}
	}
	// The non-unified entries are all tier graphs: the paper's generational
	// chain is just the stock three-tier shape, a four-generation chain
	// needs nothing but a longer spec string, and the adaptive entry
	// attaches the online split controller to the stock shape.
	graph := func(tiers string, adaptive bool) func(repro.Observer) repro.Manager {
		return func(h repro.Observer) repro.Manager {
			spec, err := repro.ParseTierSpec(tiers, capacity)
			if err != nil {
				log.Fatal(err)
			}
			if adaptive {
				spec.Adaptive = &repro.AdaptiveConfig{Epoch: 512}
			}
			g, err := repro.NewTierGraph(spec, h)
			if err != nil {
				log.Fatal(err)
			}
			return g
		}
	}
	entries := []entry{
		{"unified pseudo-circular", mk(repro.PseudoCircularPolicy)},
		{"unified LRU", mk(repro.LRUPolicy)},
		{"unified flush-when-full", mk(repro.FlushWhenFullPolicy)},
		{"unified preemptive-flush", mk(repro.PreemptiveFlushPolicy)},
		{"generational 45-10-45@1", graph("45-10-45@1", false)},
		{"4-gen 30-10-20-40@1,2", graph("30-10-20-40@1,2", false)},
		{"adaptive 45-10-45@1", graph("45-10-45@1", true)},
	}

	fmt.Printf("%-26s %10s %10s %10s %12s\n", "manager", "accesses", "misses", "miss rate", "overhead")
	var baseline float64
	for i, e := range entries {
		res := replay(e.mgr, events, profile.Name)
		total := res.Overhead.Total()
		if i == 0 {
			baseline = total
		}
		fmt.Printf("%-26s %10d %10d %9.3f%% %11.1f%%\n",
			e.name, res.Accesses, res.Misses, 100*res.MissRate(), 100*total/baseline)
	}
	fmt.Println("\noverhead is relative to the pseudo-circular baseline (lower is better).")
	fmt.Println("note: LRU's miss rate is strong but the Table 2 model does not charge its")
	fmt.Println("per-access bookkeeping or fragmentation walks — the very costs that made")
	fmt.Println("the paper's prior work reject LRU for real code caches (§4.2).")
}

func replay(mk func(repro.Observer) repro.Manager, events []repro.Event, name string) repro.ReplayResult {
	// Each replay needs a fresh manager wired to a fresh cost accumulator;
	// the facade's Replay helpers handle the pairing for the two standard
	// shapes, and this generic path reuses ReplayUnified's plumbing through
	// the sim package via the manager interface.
	res, err := repro.ReplayWith(name, events, mk)
	if err != nil {
		log.Fatal(err)
	}
	return res
}
