// Quickstart: the end-to-end pipeline in one page.
//
// Synthesize a benchmark, run it under the dynamic optimizer with the
// paper's generational code cache, and print what happened.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// Pick a benchmark: solitaire, the smallest interactive application of
	// Table 1, scaled down 8x so this runs in well under a second.
	profile, ok := repro.BenchmarkByName("solitaire")
	if !ok {
		log.Fatal("benchmark missing")
	}
	profile = profile.Scaled(0.125)

	bench, err := repro.Synthesize(profile)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthesized %s: %d functions, %s of code across %d modules\n",
		profile.Name, bench.NumFunctions(), kb(bench.Image.Footprint()), len(bench.Image.Modules))

	// A generational trace cache: 45% nursery, 10% probation, 45%
	// persistent, single-hit promotion — the paper's best configuration.
	// Capacity is deliberately tight (128 KB) so the caches have to work.
	// A custom observer on the manager's event bus counts promotions and
	// capacity evictions as they happen.
	var promotions, evictions int
	counter := repro.ObserverFunc(func(e repro.CacheEvent) {
		switch e.Kind {
		case repro.EventPromote:
			promotions++
		case repro.EventEvict:
			evictions++
		}
	})
	mgr, err := repro.NewGenerational(repro.BestLayout(128<<10), counter)
	if err != nil {
		log.Fatal(err)
	}

	engine, err := repro.NewEngine(bench.Image, repro.EngineConfig{Manager: mgr})
	if err != nil {
		log.Fatal(err)
	}
	if err := engine.Run(bench.NewDriver(), 0); err != nil {
		log.Fatal(err)
	}

	s := engine.Stats()
	fmt.Printf("\nexecuted %d guest blocks (%d instructions)\n", s.Blocks, s.GuestInstrs)
	fmt.Printf("basic-block cache: %d blocks, %s\n", s.BBCopied, kb(s.BBBytes))
	fmt.Printf("traces created:    %d (%s)\n", s.TracesCreated, kb(s.TraceBytes))
	fmt.Printf("trace accesses:    %d (%.2f%% misses)\n", s.Accesses, 100*s.MissRate())
	fmt.Printf("unmapped traces:   %d (%s) after DLL unloads\n", s.UnmappedTraces, kb(s.UnmappedBytes))
	fmt.Printf("promotions:        %d between generational caches\n", promotions)
	fmt.Printf("evictions:         %d traces aged out entirely\n", evictions)

	ms := mgr.Stats()
	fmt.Printf("\ngenerational manager: %d inserts, %d to probation, %d to persistent, %d probation deaths\n",
		ms.Inserts, ms.PromotedToProbation, ms.PromotedToPersist, ms.ProbationDeaths)
}

func kb(n uint64) string { return fmt.Sprintf("%.1f KB", float64(n)/1024) }
