// Interactive: the paper's headline experiment on its largest workload.
//
// Microsoft Word is the paper's most demanding benchmark: a 34.2 MB
// unbounded code cache, heavy DLL churn, and constant trace creation. This
// example runs the word-like synthetic workload, captures its cache-event
// log, and compares a unified pseudo-circular cache against the
// generational design at half the unbounded footprint — reporting the three
// numbers the paper leads with: miss-rate reduction (Figure 9), misses
// eliminated (Figure 10), and the instruction-overhead ratio (Figure 11,
// Equation 3).
//
//	go run ./examples/interactive
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro"
)

func main() {
	profile, ok := repro.BenchmarkByName("word")
	if !ok {
		log.Fatal("benchmark missing")
	}
	profile = profile.Scaled(0.0625) // 1/16 size keeps this example snappy

	bench, err := repro.Synthesize(profile)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("word-like workload: %d functions, %d modules, %d phases of user activity\n",
		bench.NumFunctions(), len(bench.Image.Modules), profile.Phases)

	// Unbounded run: capture the verbose cache-event log.
	var buf bytes.Buffer
	w, err := repro.NewLogWriter(&buf, profile.Name, profile.DurationMicros())
	if err != nil {
		log.Fatal(err)
	}
	engine, err := repro.NewEngine(bench.Image, repro.EngineConfig{
		Manager: repro.NewUnified(1<<40, nil),
		Log:     w,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := engine.Run(bench.NewDriver(), 0); err != nil {
		log.Fatal(err)
	}
	s := engine.Stats()
	fmt.Printf("unbounded run: %d traces created (%.1f MB), %d trace accesses, %.1f MB unmapped by DLL unloads\n",
		s.TracesCreated, mb(s.TraceBytes), s.Accesses, mb(s.UnmappedBytes))

	_, events, err := repro.ReadLog(&buf)
	if err != nil {
		log.Fatal(err)
	}

	// The paper's comparison: capacity = half the unbounded footprint.
	peak := repro.UnboundedPeak(events)
	capacity := peak / 2
	fmt.Printf("\nsimulating at %.1f MB total cache (half the %.1f MB unbounded peak)\n\n",
		mb(capacity), mb(peak))

	cmp, err := repro.Compare(profile.Name, events, capacity, repro.BestLayout(capacity))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-28s %12s %12s\n", "", "unified", "generational")
	fmt.Printf("%-28s %12d %12d\n", "trace-cache misses", cmp.Unified.Misses, cmp.Generational.Misses)
	fmt.Printf("%-28s %11.3f%% %11.3f%%\n", "miss rate", 100*cmp.Unified.MissRate(), 100*cmp.Generational.MissRate())
	fmt.Printf("%-28s %12s %12d\n", "promotions", "-", cmp.Generational.Overhead.Promotions)
	fmt.Printf("%-28s %12.0f %12.0f\n", "overhead (M instructions)",
		cmp.Unified.Overhead.Total()/1e6, cmp.Generational.Overhead.Total()/1e6)

	fmt.Printf("\nmiss-rate reduction: %+.1f%%   (paper average: 18%%)\n", 100*cmp.MissRateReduction())
	fmt.Printf("misses eliminated:   %d\n", cmp.MissesEliminated())
	fmt.Printf("overhead ratio:      %.1f%%  (paper geomean: 80.7%%; below 100%% is a win)\n",
		100*cmp.OverheadRatio())
}

func mb(n uint64) float64 { return float64(n) / (1 << 20) }
