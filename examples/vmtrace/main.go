// VMTrace: watch the dynamic optimizer work on a real interpreted program.
//
// This example hand-assembles a small guest program in the synthetic ISA —
// a nested loop that calls a helper in a DLL, unloads the DLL, and keeps
// looping — then executes it instruction by instruction on the reference
// interpreter while the engine translates it: copying basic blocks,
// counting trace heads, building NET superblocks, and force-deleting the
// DLL's traces when it is unmapped.
//
//	go run ./examples/vmtrace
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/isa"
	"repro/internal/program"
	"repro/internal/trace"
)

func buildGuest() (*repro.Image, error) {
	b := program.NewBuilder()
	exe := b.Module("demo.exe", false)
	dll := b.Module("helper.dll", true)

	// helper(r1) = r1 * 2 + 1
	hb, helper := dll.Function("helper")
	hb.Block()
	hb.I(isa.Inst{Op: isa.OpAdd, Rd: 1, Rs1: 1, Rs2: 1})
	hb.I(isa.Inst{Op: isa.OpAddImm, Rd: 1, Rs1: 1, Imm: 1})
	hb.Ret()

	// main: outer loop 120x { inner work; call helper }, unload DLL at
	// iteration 60, keep looping without the helper.
	fb, mainFn := exe.Function("main")
	fb.Block()
	fb.I(isa.Inst{Op: isa.OpMovImm, Rd: 2, Imm: 0}) // outer counter
	outer := fb.NewBlock()
	fb.Jmp(outer)

	fb.StartBlock(outer)
	fb.I(isa.Inst{Op: isa.OpAddImm, Rd: 2, Rs1: 2, Imm: 1})
	fb.I(isa.Inst{Op: isa.OpMovImm, Rd: 3, Imm: 0}) // inner counter
	inner := fb.NewBlock()
	fb.Jmp(inner)
	fb.StartBlock(inner)
	fb.I(isa.Inst{Op: isa.OpAddImm, Rd: 3, Rs1: 3, Imm: 1})
	fb.I(isa.Inst{Op: isa.OpAddImm, Rd: 4, Rs1: 4, Imm: 7}) // busywork
	fb.I(isa.Inst{Op: isa.OpCmpImm, Rs1: 3, Imm: 8})
	fb.Jcc(isa.CondLT, inner)

	// Call the helper only while the DLL is mapped (first 60 iterations).
	callBlk := fb.Block()
	fb.I(isa.Inst{Op: isa.OpCmpImm, Rs1: 2, Imm: 60})
	noCall := fb.NewBlock()
	fb.Jcc(isa.CondGE, noCall)
	fb.Block()
	fb.I(isa.Inst{Op: isa.OpMov, Rd: 1, Rs1: 2})
	fb.Call(helper)
	join := fb.NewBlock()
	fb.Block() // return point of the call
	fb.Jmp(join)

	fb.StartBlock(noCall)
	// At exactly iteration 60, unload the DLL: its traces must die.
	fb.I(isa.Inst{Op: isa.OpCmpImm, Rs1: 2, Imm: 60})
	skipUnload := fb.NewBlock()
	fb.Jcc(isa.CondNE, skipUnload)
	fb.Block()
	fb.I(isa.Inst{Op: isa.OpMovImm, Rd: 1, Imm: 1}) // module id of helper.dll
	fb.Syscall(isa.SysUnloadModule)
	fb.Block()
	fb.Jmp(join)
	fb.StartBlock(skipUnload)
	fb.Jmp(join)

	fb.StartBlock(join)
	fb.I(isa.Inst{Op: isa.OpCmpImm, Rs1: 2, Imm: 120})
	fb.Jcc(isa.CondLT, outer)
	fb.Block()
	fb.Syscall(isa.SysExit)
	fb.Block()
	fb.Halt()
	_ = callBlk

	b.SetEntry(mainFn)
	return b.Build()
}

func main() {
	img, err := buildGuest()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("guest image: %d blocks, %d bytes across %d modules\n",
		img.NumBlocks(), img.Footprint(), len(img.Modules))

	mgr := repro.NewUnified(64<<10, nil)
	engine, err := repro.NewEngine(img, repro.EngineConfig{
		Manager:      mgr,
		HotThreshold: 10, // hot quickly, for demonstration
	})
	if err != nil {
		log.Fatal(err)
	}

	machine := repro.NewInterpreter(img)
	if err := engine.Run(repro.VMGuest(machine), 0); err != nil {
		log.Fatal(err)
	}

	s := engine.Stats()
	fmt.Printf("\ninterpreted %d instructions in %d basic blocks\n", s.GuestInstrs, s.Blocks)
	fmt.Printf("traces created: %d (%d bytes); dispatch entries: %d; in-trace blocks: %d\n",
		s.TracesCreated, s.TraceBytes, s.Accesses, s.InTraceSteps)
	fmt.Printf("DLL unload force-deleted %d trace(s), %d bytes\n", s.UnmappedTraces, s.UnmappedBytes)

	// Show what one superblock looks like, and that it can be encoded and
	// relocated between cache addresses (§5.4).
	inner, _ := img.FindFunction("main")
	var shown bool
	for _, blk := range inner.Blocks {
		if t, ok := engine.TraceFor(blk.Addr); ok && t.Len() > 1 {
			fmt.Printf("\ntrace %d at head %#x: %d blocks, %d exits, %d bytes total\n",
				t.ID, t.Head, t.Len(), t.Exits, t.Size())
			body, offs, err := trace.Encode(t, 0x7000_0000)
			if err != nil {
				log.Fatal(err)
			}
			if err := trace.Relocate(body, offs, 0x7000_0000, 0x7f00_0000, len(body)); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("encoded %d body bytes and relocated them 0x7000_0000 -> 0x7f00_0000\n", len(body))
			shown = true
			break
		}
	}
	if !shown {
		fmt.Println("\n(no multi-block trace materialized)")
	}
	fmt.Printf("\nguest exit code: %d (machine halted: %v)\n", machine.ExitCode, machine.Halted())
}
