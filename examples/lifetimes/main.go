// Lifetimes: reproduce the U-shaped trace-lifetime distribution of
// Figure 6 for one SPEC benchmark and one interactive application.
//
// A trace's lifetime (Equation 2) is the span between its first and last
// execution, as a fraction of the whole run. The paper's observation — most
// traces live either under 20% or over 80% of the run — is what justifies
// generational code caches.
//
//	go run ./examples/lifetimes
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
)

func main() {
	for _, name := range []string{"gzip", "word"} {
		profile, ok := repro.BenchmarkByName(name)
		if !ok {
			log.Fatalf("unknown benchmark %q", name)
		}
		profile = profile.Scaled(0.0625)

		bench, err := repro.Synthesize(profile)
		if err != nil {
			log.Fatal(err)
		}
		lt := repro.NewLifetimes()
		// The unbounded cache is the one-tier graph: lifetime measurement
		// must see every trace's full life, so nothing may be evicted.
		unbounded, err := repro.NewTierGraph(repro.UnifiedGraphSpec(1<<40), nil)
		if err != nil {
			log.Fatal(err)
		}
		engine, err := repro.NewEngine(bench.Image, repro.EngineConfig{
			Manager:   unbounded,
			Lifetimes: lt,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := engine.Run(bench.NewDriver(), 0); err != nil {
			log.Fatal(err)
		}
		s := engine.Stats()

		fmt.Printf("%s (%s): %d traces\n\n", profile.Name, profile.Suite, lt.Len())
		h := lt.Histogram(float64(s.EndTime), 10)
		for i := 0; i < 10; i++ {
			frac := h.Fraction(i)
			bar := strings.Repeat("#", int(frac*60+0.5))
			fmt.Printf("  %3d-%3d%% lifetime  %5.1f%%  %s\n", i*10, (i+1)*10, frac*100, bar)
		}
		short, mid, long := lt.Fractions(float64(s.EndTime), 0.2, 0.8)
		fmt.Printf("\n  short-lived (<20%%): %.1f%%   middle: %.1f%%   long-lived (>80%%): %.1f%%\n\n",
			short*100, mid*100, long*100)
	}
	fmt.Println("the extremes dominate: short-lived traces can be evicted cheaply from a")
	fmt.Println("nursery cache while long-lived traces deserve a persistent cache (paper §5.1)")
}
